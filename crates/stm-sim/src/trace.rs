//! Execution traces: an optional per-operation event log from the engine.
//!
//! Proteus's strength was observability — simulated runs could be dissected
//! cycle by cycle. Enabling `trace_limit` in
//! [`SimConfig`](crate::engine::SimConfig) records every memory operation
//! (and delay) with its completion time; [`TraceAnalysis`] summarizes a
//! trace into the quantities the evaluation cares about: per-processor
//! operation mixes, throughput over time, and hot addresses.

use stm_core::word::Addr;

use crate::arch::OpKind;

/// One recorded engine event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual completion time.
    pub time: u64,
    /// Issuing processor.
    pub proc: usize,
    /// What happened.
    pub kind: TraceKind,
}

/// Kind of a trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceKind {
    /// A memory operation on an address.
    Mem(OpKind, Addr),
    /// A local delay of the given length.
    Delay(u64),
    /// A protocol step announcement (see [`stm_core::step`]). Recorded at
    /// the announcing processor's local time; costs no cycles.
    Step(stm_core::step::StepPoint),
    /// The processor parked on a retry watch list of the given length; it
    /// takes no scheduler steps until a [`Wake`](TraceKind::Wake).
    Park(usize),
    /// A committing writer's change to the given address woke this (parked)
    /// processor; recorded at the assigned wakeup time.
    Wake(Addr),
    /// A scripted fault crashed the processor here.
    FaultCrash,
    /// A scripted fault stalled the processor here for the given cycles.
    FaultStall(u64),
    /// A scripted fault slowed the processor down by the given factor here.
    FaultSlow(u64),
}

/// Render the last `last_n` events of a trace as a human-readable per-cycle
/// dump — one line per event, sorted by virtual time. This is what the
/// counterexample shrinker attaches to a minimal reproducer.
///
/// `dropped` is the engine's count of events lost past the trace limit
/// ([`SimReport::trace_dropped`](crate::engine::SimReport::trace_dropped));
/// when nonzero the rendering says so, instead of presenting a truncated
/// trace as complete.
///
/// Events are recorded at issue in grant order, which is not globally sorted
/// by completion time; this sorts a copy (stably, so simultaneous events keep
/// their recording order).
pub fn render_trace(trace: &[TraceEvent], last_n: usize, dropped: u64) -> String {
    let mut sorted: Vec<&TraceEvent> = trace.iter().collect();
    sorted.sort_by_key(|e| e.time);
    let skip = sorted.len().saturating_sub(last_n);
    let mut out = String::new();
    if skip > 0 {
        out.push_str(&format!("... {skip} earlier events elided ...\n"));
    }
    for e in &sorted[skip..] {
        let what = match e.kind {
            TraceKind::Mem(op, addr) => format!("{op:?} @{addr}"),
            TraceKind::Delay(c) => format!("delay {c}"),
            TraceKind::Step(p) => format!("step {p}"),
            TraceKind::Park(n) => format!("park ({n} watches)"),
            TraceKind::Wake(addr) => format!("wake @{addr}"),
            TraceKind::FaultCrash => "FAULT crash".to_owned(),
            TraceKind::FaultStall(c) => format!("FAULT stall {c}"),
            TraceKind::FaultSlow(f) => format!("FAULT slow x{f}"),
        };
        out.push_str(&format!("t={:>8}  P{}  {}\n", e.time, e.proc, what));
    }
    if dropped > 0 {
        out.push_str(&format!("... {dropped} events dropped at the trace limit ...\n"));
    }
    out
}

/// Summary statistics over a trace.
#[derive(Debug, Clone)]
pub struct TraceAnalysis {
    /// Total events analyzed.
    pub events: usize,
    /// Memory operations per processor.
    pub ops_per_proc: Vec<u64>,
    /// The busiest addresses: `(address, access count)`, most-accessed first.
    pub hot_addresses: Vec<(Addr, u64)>,
    /// Completed memory operations per time bucket.
    pub ops_over_time: Vec<u64>,
    /// Bucket width used for `ops_over_time`.
    pub bucket: u64,
    /// Transaction commit decisions announced in the trace.
    pub commits: u64,
    /// Transaction abort (failure) decisions announced in the trace.
    pub aborts: u64,
    /// Helping spans entered in the trace.
    pub helps: u64,
    /// Scripted fault deliveries (crash/stall/slow) in the trace.
    pub faults: u64,
    /// Protocol step announcements per processor.
    pub steps_per_proc: Vec<u64>,
}

impl TraceAnalysis {
    /// Analyze `trace` for `n_procs` processors with `buckets` time buckets
    /// (at least 1).
    pub fn of(trace: &[TraceEvent], n_procs: usize, buckets: usize) -> Self {
        let buckets = buckets.max(1);
        let end = trace.iter().map(|e| e.time).max().unwrap_or(0).max(1);
        let bucket = end.div_ceil(buckets as u64).max(1);
        let mut ops_per_proc = vec![0u64; n_procs];
        let mut steps_per_proc = vec![0u64; n_procs];
        let mut ops_over_time = vec![0u64; buckets];
        let mut addr_counts: std::collections::HashMap<Addr, u64> = std::collections::HashMap::new();
        let mut events = 0;
        let (mut commits, mut aborts, mut helps, mut faults) = (0u64, 0u64, 0u64, 0u64);
        for e in trace {
            events += 1;
            match e.kind {
                TraceKind::Mem(_, addr) => {
                    if e.proc < n_procs {
                        ops_per_proc[e.proc] += 1;
                    }
                    *addr_counts.entry(addr).or_default() += 1;
                    let b = ((e.time / bucket) as usize).min(buckets - 1);
                    ops_over_time[b] += 1;
                }
                TraceKind::Step(p) => {
                    if e.proc < n_procs {
                        steps_per_proc[e.proc] += 1;
                    }
                    match p {
                        stm_core::step::StepPoint::Decided { committed: true } => commits += 1,
                        stm_core::step::StepPoint::Decided { committed: false } => aborts += 1,
                        stm_core::step::StepPoint::HelpBegin { .. } => helps += 1,
                        _ => {}
                    }
                }
                TraceKind::FaultCrash | TraceKind::FaultStall(_) | TraceKind::FaultSlow(_) => {
                    faults += 1;
                }
                TraceKind::Delay(_) | TraceKind::Park(_) | TraceKind::Wake(_) => {}
            }
        }
        let mut hot_addresses: Vec<(Addr, u64)> = addr_counts.into_iter().collect();
        hot_addresses.sort_by_key(|&(a, n)| (std::cmp::Reverse(n), a));
        hot_addresses.truncate(16);
        TraceAnalysis {
            events,
            ops_per_proc,
            hot_addresses,
            ops_over_time,
            bucket,
            commits,
            aborts,
            helps,
            faults,
            steps_per_proc,
        }
    }

    /// The single most-accessed address, if any memory op was traced.
    pub fn hottest(&self) -> Option<Addr> {
        self.hot_addresses.first().map(|&(a, _)| a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(time: u64, proc: usize, addr: Addr) -> TraceEvent {
        TraceEvent { time, proc, kind: TraceKind::Mem(OpKind::Read, addr) }
    }

    #[test]
    fn analysis_counts_and_ranks() {
        let trace = vec![
            ev(1, 0, 5),
            ev(2, 1, 5),
            ev(3, 0, 7),
            ev(10, 1, 5),
            TraceEvent { time: 4, proc: 0, kind: TraceKind::Delay(3) },
        ];
        let a = TraceAnalysis::of(&trace, 2, 2);
        assert_eq!(a.events, 5);
        assert_eq!(a.ops_per_proc, vec![2, 2]);
        assert_eq!(a.hottest(), Some(5));
        assert_eq!(a.ops_over_time.iter().sum::<u64>(), 4);
        assert_eq!((a.commits, a.aborts, a.helps, a.faults), (0, 0, 0, 0));
    }

    #[test]
    fn analysis_tallies_protocol_and_fault_events() {
        use stm_core::step::StepPoint;
        let step = |time, proc, p| TraceEvent { time, proc, kind: TraceKind::Step(p) };
        let trace = vec![
            step(1, 0, StepPoint::TxPublished),
            step(2, 0, StepPoint::Decided { committed: true }),
            step(3, 1, StepPoint::HelpBegin { owner: 0 }),
            step(4, 1, StepPoint::Decided { committed: false }),
            TraceEvent { time: 5, proc: 1, kind: TraceKind::FaultCrash },
            TraceEvent { time: 6, proc: 0, kind: TraceKind::FaultStall(10) },
        ];
        let a = TraceAnalysis::of(&trace, 2, 1);
        assert_eq!(a.commits, 1);
        assert_eq!(a.aborts, 1);
        assert_eq!(a.helps, 1);
        assert_eq!(a.faults, 2);
        assert_eq!(a.steps_per_proc, vec![2, 2]);
    }

    #[test]
    fn render_reports_dropped_events() {
        let trace = vec![ev(1, 0, 0)];
        let full = render_trace(&trace, 10, 0);
        assert!(!full.contains("dropped"), "{full}");
        let truncated = render_trace(&trace, 10, 42);
        assert!(truncated.contains("... 42 events dropped at the trace limit ..."), "{truncated}");
    }

    #[test]
    fn empty_trace_is_fine() {
        let a = TraceAnalysis::of(&[], 4, 3);
        assert_eq!(a.events, 0);
        assert_eq!(a.hottest(), None);
    }

    #[test]
    fn engine_records_when_enabled() {
        use crate::arch::UniformModel;
        use crate::engine::{SimConfig, SimPort, Simulation};
        use stm_core::machine::MemPort;

        let report = Simulation::new(
            SimConfig { n_words: 2, trace_limit: 100, ..Default::default() },
            UniformModel::new(1, 3),
        )
        .run(2, |p| {
            move |mut port: SimPort| {
                for _ in 0..5 {
                    let v = port.read(0);
                    port.write(1, v + p as u64);
                }
                port.delay(10);
            }
        });
        assert_eq!(report.trace.len(), 2 * (10 + 1));
        let a = TraceAnalysis::of(&report.trace, 2, 4);
        assert_eq!(a.ops_per_proc, vec![10, 10]);
        // address 0 and 1 equally hot; tie broken by address
        assert_eq!(a.hottest(), Some(0));
    }

    #[test]
    fn engine_trace_is_bounded_by_limit() {
        use crate::arch::UniformModel;
        use crate::engine::{SimConfig, SimPort, Simulation};
        use stm_core::machine::MemPort;

        let report = Simulation::new(
            SimConfig { n_words: 1, trace_limit: 7, ..Default::default() },
            UniformModel::new(1, 1),
        )
        .run(1, |_| {
            move |mut port: SimPort| {
                for _ in 0..50 {
                    let _ = port.read(0);
                }
            }
        });
        assert_eq!(report.trace.len(), 7);
        assert_eq!(report.trace_dropped, 50 - 7, "every lost event is accounted for");
    }
}
