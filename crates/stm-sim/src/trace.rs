//! Execution traces: an optional per-operation event log from the engine.
//!
//! Proteus's strength was observability — simulated runs could be dissected
//! cycle by cycle. Enabling `trace_limit` in
//! [`SimConfig`](crate::engine::SimConfig) records every memory operation
//! (and delay) with its completion time; [`TraceAnalysis`] summarizes a
//! trace into the quantities the evaluation cares about: per-processor
//! operation mixes, throughput over time, and hot addresses.

use stm_core::word::Addr;

use crate::arch::OpKind;

/// One recorded engine event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual completion time.
    pub time: u64,
    /// Issuing processor.
    pub proc: usize,
    /// What happened.
    pub kind: TraceKind,
}

/// Kind of a trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceKind {
    /// A memory operation on an address.
    Mem(OpKind, Addr),
    /// A local delay of the given length.
    Delay(u64),
    /// A protocol step announcement (see [`stm_core::step`]). Recorded at
    /// the announcing processor's local time; costs no cycles.
    Step(stm_core::step::StepPoint),
    /// A scripted fault crashed the processor here.
    FaultCrash,
    /// A scripted fault stalled the processor here for the given cycles.
    FaultStall(u64),
    /// A scripted fault slowed the processor down by the given factor here.
    FaultSlow(u64),
}

/// Render the last `last_n` events of a trace as a human-readable per-cycle
/// dump — one line per event, sorted by virtual time. This is what the
/// counterexample shrinker attaches to a minimal reproducer.
///
/// Events are recorded at issue in grant order, which is not globally sorted
/// by completion time; this sorts a copy (stably, so simultaneous events keep
/// their recording order).
pub fn render_trace(trace: &[TraceEvent], last_n: usize) -> String {
    let mut sorted: Vec<&TraceEvent> = trace.iter().collect();
    sorted.sort_by_key(|e| e.time);
    let skip = sorted.len().saturating_sub(last_n);
    let mut out = String::new();
    if skip > 0 {
        out.push_str(&format!("... {skip} earlier events elided ...\n"));
    }
    for e in &sorted[skip..] {
        let what = match e.kind {
            TraceKind::Mem(op, addr) => format!("{op:?} @{addr}"),
            TraceKind::Delay(c) => format!("delay {c}"),
            TraceKind::Step(p) => format!("step {p}"),
            TraceKind::FaultCrash => "FAULT crash".to_owned(),
            TraceKind::FaultStall(c) => format!("FAULT stall {c}"),
            TraceKind::FaultSlow(f) => format!("FAULT slow x{f}"),
        };
        out.push_str(&format!("t={:>8}  P{}  {}\n", e.time, e.proc, what));
    }
    out
}

/// Summary statistics over a trace.
#[derive(Debug, Clone)]
pub struct TraceAnalysis {
    /// Total events analyzed.
    pub events: usize,
    /// Memory operations per processor.
    pub ops_per_proc: Vec<u64>,
    /// The busiest addresses: `(address, access count)`, most-accessed first.
    pub hot_addresses: Vec<(Addr, u64)>,
    /// Completed memory operations per time bucket.
    pub ops_over_time: Vec<u64>,
    /// Bucket width used for `ops_over_time`.
    pub bucket: u64,
}

impl TraceAnalysis {
    /// Analyze `trace` for `n_procs` processors with `buckets` time buckets
    /// (at least 1).
    pub fn of(trace: &[TraceEvent], n_procs: usize, buckets: usize) -> Self {
        let buckets = buckets.max(1);
        let end = trace.iter().map(|e| e.time).max().unwrap_or(0).max(1);
        let bucket = end.div_ceil(buckets as u64).max(1);
        let mut ops_per_proc = vec![0u64; n_procs];
        let mut ops_over_time = vec![0u64; buckets];
        let mut addr_counts: std::collections::HashMap<Addr, u64> = std::collections::HashMap::new();
        let mut events = 0;
        for e in trace {
            events += 1;
            if let TraceKind::Mem(_, addr) = e.kind {
                if e.proc < n_procs {
                    ops_per_proc[e.proc] += 1;
                }
                *addr_counts.entry(addr).or_default() += 1;
                let b = ((e.time / bucket) as usize).min(buckets - 1);
                ops_over_time[b] += 1;
            }
        }
        let mut hot_addresses: Vec<(Addr, u64)> = addr_counts.into_iter().collect();
        hot_addresses.sort_by_key(|&(a, n)| (std::cmp::Reverse(n), a));
        hot_addresses.truncate(16);
        TraceAnalysis { events, ops_per_proc, hot_addresses, ops_over_time, bucket }
    }

    /// The single most-accessed address, if any memory op was traced.
    pub fn hottest(&self) -> Option<Addr> {
        self.hot_addresses.first().map(|&(a, _)| a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(time: u64, proc: usize, addr: Addr) -> TraceEvent {
        TraceEvent { time, proc, kind: TraceKind::Mem(OpKind::Read, addr) }
    }

    #[test]
    fn analysis_counts_and_ranks() {
        let trace = vec![
            ev(1, 0, 5),
            ev(2, 1, 5),
            ev(3, 0, 7),
            ev(10, 1, 5),
            TraceEvent { time: 4, proc: 0, kind: TraceKind::Delay(3) },
        ];
        let a = TraceAnalysis::of(&trace, 2, 2);
        assert_eq!(a.events, 5);
        assert_eq!(a.ops_per_proc, vec![2, 2]);
        assert_eq!(a.hottest(), Some(5));
        assert_eq!(a.ops_over_time.iter().sum::<u64>(), 4);
    }

    #[test]
    fn empty_trace_is_fine() {
        let a = TraceAnalysis::of(&[], 4, 3);
        assert_eq!(a.events, 0);
        assert_eq!(a.hottest(), None);
    }

    #[test]
    fn engine_records_when_enabled() {
        use crate::arch::UniformModel;
        use crate::engine::{SimConfig, SimPort, Simulation};
        use stm_core::machine::MemPort;

        let report = Simulation::new(
            SimConfig { n_words: 2, trace_limit: 100, ..Default::default() },
            UniformModel::new(1, 3),
        )
        .run(2, |p| {
            move |mut port: SimPort| {
                for _ in 0..5 {
                    let v = port.read(0);
                    port.write(1, v + p as u64);
                }
                port.delay(10);
            }
        });
        assert_eq!(report.trace.len(), 2 * (10 + 1));
        let a = TraceAnalysis::of(&report.trace, 2, 4);
        assert_eq!(a.ops_per_proc, vec![10, 10]);
        // address 0 and 1 equally hot; tie broken by address
        assert_eq!(a.hottest(), Some(0));
    }

    #[test]
    fn engine_trace_is_bounded_by_limit() {
        use crate::arch::UniformModel;
        use crate::engine::{SimConfig, SimPort, Simulation};
        use stm_core::machine::MemPort;

        let report = Simulation::new(
            SimConfig { n_words: 1, trace_limit: 7, ..Default::default() },
            UniformModel::new(1, 1),
        )
        .run(1, |_| {
            move |mut port: SimPort| {
                for _ in 0..50 {
                    let _ = port.read(0);
                }
            }
        });
        assert_eq!(report.trace.len(), 7);
    }
}
