//! A trace-consuming progress monitor for the lock-freedom bound.
//!
//! The Shavit–Touitou guarantee is lock-freedom: *if non-crashed processors
//! keep taking steps, some transaction commits*. A crashed processor may
//! stall everyone briefly (its ownerships must be discovered and helped),
//! but it can never stall the system indefinitely.
//!
//! [`LivenessChecker`] turns that into a finite check over a recorded trace:
//! in any window of protocol activity — step announcements by processors
//! that never crash — longer than `commit_budget` cycles and containing at
//! least `min_steps` steps, some transaction must have committed (a
//! [`StepPoint::Decided`] with `committed: true`, from any processor). A
//! window that overruns the budget is reported as
//! [`Violation::NoProgress`].
//!
//! Tracing must be enabled ([`SimConfig::trace_limit`](crate::engine::SimConfig)
//! large enough to hold the run) for the check to be meaningful; an empty
//! trace trivially passes.
//!
//! [`ForcedOrderChecker`] guards the fairness extension the same way: a
//! forced-priority sweep must claim locations in strictly ascending cell
//! order across its whole episode (resumed sweeps included), or the
//! deadlock-freedom argument for the never-self-fail tier collapses. Every
//! [`StepPoint::ForcedAcquired`] announcement is checked against the
//! episode's previous claim; a regression is reported as
//! [`Violation::ForcedOrder`].

use std::collections::HashSet;

use stm_core::step::StepPoint;

use crate::engine::{SimReport, Violation};
use crate::trace::{TraceEvent, TraceKind};

/// Configurable lock-freedom monitor over a recorded trace.
#[derive(Debug, Clone, Copy)]
pub struct LivenessChecker {
    /// Maximum virtual cycles of protocol activity allowed between commits.
    pub commit_budget: u64,
    /// Minimum protocol steps (by non-crashed processors) in the window
    /// before a budget overrun counts as a violation — filters the finite
    /// tail of cleanup work after the last commit of a run.
    pub min_steps: usize,
}

impl Default for LivenessChecker {
    fn default() -> Self {
        LivenessChecker { commit_budget: 100_000, min_steps: 40 }
    }
}

impl LivenessChecker {
    /// A checker with the given commit budget and the default step floor.
    pub fn with_budget(commit_budget: u64) -> Self {
        LivenessChecker { commit_budget, ..Default::default() }
    }

    /// Check a finished run. Returns the first violation found: the engine's
    /// own watchdog verdict if it halted the run, otherwise the first
    /// no-progress window in the trace.
    pub fn check(&self, report: &SimReport) -> Option<Violation> {
        if let Some(v) = &report.violation {
            return Some(v.clone());
        }
        self.check_trace(&report.trace, &report.crashed)
    }

    /// Check a raw trace, ignoring protocol steps of `crashed` processors.
    pub fn check_trace(&self, trace: &[TraceEvent], crashed: &[usize]) -> Option<Violation> {
        let crashed: HashSet<usize> = crashed.iter().copied().collect();
        // The engine records events at issue in grant order, which is not
        // globally time-sorted; sort a copy (stable, so simultaneous events
        // keep their recording order).
        let mut events: Vec<&TraceEvent> = trace.iter().collect();
        events.sort_by_key(|e| e.time);

        let mut window_start = 0u64;
        let mut steps = 0usize;
        for e in events {
            match e.kind {
                TraceKind::Step(StepPoint::Decided { committed: true }) => {
                    // A commit is progress no matter who achieved it — even a
                    // processor that crashes later.
                    window_start = e.time;
                    steps = 0;
                }
                TraceKind::Step(_) if !crashed.contains(&e.proc) => {
                    steps += 1;
                    if steps >= self.min_steps && e.time.saturating_sub(window_start) > self.commit_budget
                    {
                        return Some(Violation::NoProgress {
                            window_start,
                            at: e.time,
                            steps,
                        });
                    }
                }
                _ => {}
            }
        }
        None
    }
}

/// Trace monitor for the forced tier's ascending-order invariant.
///
/// A [`PriorityLevel::Forced`](stm_core::contention::PriorityLevel) sweep
/// never self-fails: on a live conflict it helps the obstructor and resumes
/// with its held prefix intact. That is deadlock-free *only because* claims
/// stay in ascending cell order — two forced-style holders claiming out of
/// order could each block on a cell the other holds. The protocol announces
/// every newly claimed location of a forced episode as
/// [`StepPoint::ForcedAcquired`] (cell index, not data-set position); this
/// checker asserts the announced indices are strictly increasing per
/// processor within an episode.
///
/// An episode ends when the processor publishes a new transaction
/// ([`StepPoint::TxPublished`]) or its transaction is decided
/// ([`StepPoint::Decided`]) — either resets the expectation, so consecutive
/// forced transactions may each start back at a low cell.
///
/// Stateless and config-free: the invariant is exact, with no budget to
/// tune. Crashed processors are *not* exempted — an out-of-order claim is a
/// protocol bug no matter what happened to the claimant later.
#[derive(Debug, Clone, Copy, Default)]
pub struct ForcedOrderChecker;

impl ForcedOrderChecker {
    /// Check a finished run. Returns the engine's own verdict if it halted
    /// the run, otherwise the first out-of-order forced claim in the trace.
    pub fn check(&self, report: &SimReport) -> Option<Violation> {
        if let Some(v) = &report.violation {
            return Some(v.clone());
        }
        self.check_trace(&report.trace)
    }

    /// Check a raw trace.
    pub fn check_trace(&self, trace: &[TraceEvent]) -> Option<Violation> {
        // Sort a copy by time (stable: simultaneous events keep recording
        // order), as the engine records at issue in grant order.
        let mut events: Vec<&TraceEvent> = trace.iter().collect();
        events.sort_by_key(|e| e.time);

        // proc -> last forced claim of the current episode.
        let mut last: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
        for e in events {
            match e.kind {
                TraceKind::Step(StepPoint::ForcedAcquired { cell }) => {
                    if let Some(&prev) = last.get(&e.proc) {
                        if cell <= prev {
                            return Some(Violation::ForcedOrder {
                                proc: e.proc,
                                prev_cell: prev,
                                cell,
                                at: e.time,
                            });
                        }
                    }
                    last.insert(e.proc, cell);
                }
                TraceKind::Step(StepPoint::TxPublished)
                | TraceKind::Step(StepPoint::Decided { .. }) => {
                    last.remove(&e.proc);
                }
                _ => {}
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stm_core::step::StepPoint;

    fn step(time: u64, proc: usize, point: StepPoint) -> TraceEvent {
        TraceEvent { time, proc, kind: TraceKind::Step(point) }
    }

    #[test]
    fn commits_reset_the_window() {
        let checker = LivenessChecker { commit_budget: 100, min_steps: 2 };
        let mut trace = Vec::new();
        // Steady commits every 50 cycles, with retries in between: fine.
        for i in 0..20u64 {
            trace.push(step(i * 50, 0, StepPoint::AcquireAttempt { j: 0 }));
            trace.push(step(i * 50 + 10, 1, StepPoint::AcquireAttempt { j: 0 }));
            trace.push(step(i * 50 + 20, 0, StepPoint::Decided { committed: true }));
        }
        assert_eq!(checker.check_trace(&trace, &[]), None);
    }

    #[test]
    fn silent_window_is_flagged() {
        let checker = LivenessChecker { commit_budget: 100, min_steps: 3 };
        let mut trace = vec![step(10, 0, StepPoint::Decided { committed: true })];
        // Activity without commits well past the budget.
        for i in 0..10u64 {
            trace.push(step(50 + i * 40, 1, StepPoint::AcquireAttempt { j: 0 }));
        }
        match checker.check_trace(&trace, &[]) {
            Some(Violation::NoProgress { window_start: 10, at, steps }) => {
                assert!(at > 110);
                assert!(steps >= 3);
            }
            other => panic!("expected NoProgress, got {other:?}"),
        }
    }

    #[test]
    fn crashed_processor_steps_do_not_count_as_activity() {
        let checker = LivenessChecker { commit_budget: 100, min_steps: 3 };
        // Only the crashed processor is active past the budget: that is not
        // a lock-freedom violation (nobody live is being starved).
        let trace: Vec<TraceEvent> =
            (0..10u64).map(|i| step(i * 100, 2, StepPoint::AcquireAttempt { j: 0 })).collect();
        assert_eq!(checker.check_trace(&trace, &[2]), None);
        assert!(checker.check_trace(&trace, &[]).is_some());
    }

    #[test]
    fn min_steps_filters_sparse_tails() {
        let checker = LivenessChecker { commit_budget: 100, min_steps: 5 };
        // Two trailing cleanup steps long after the last commit: fine.
        let trace = vec![
            step(10, 0, StepPoint::Decided { committed: true }),
            step(5000, 1, StepPoint::BeforeRelease { j: 0 }),
            step(5010, 1, StepPoint::BeforeRelease { j: 1 }),
        ];
        assert_eq!(checker.check_trace(&trace, &[]), None);
    }

    #[test]
    fn forced_order_accepts_ascending_episodes() {
        let trace = vec![
            step(1, 0, StepPoint::TxPublished),
            step(2, 0, StepPoint::ForcedAcquired { cell: 1 }),
            step(3, 0, StepPoint::ForcedAcquired { cell: 4 }),
            step(4, 0, StepPoint::ForcedAcquired { cell: 9 }),
            step(5, 0, StepPoint::Decided { committed: true }),
        ];
        assert_eq!(ForcedOrderChecker.check_trace(&trace), None);
    }

    #[test]
    fn forced_order_flags_regression_and_repeat() {
        // Regression (4 then 2) within one episode.
        let trace = vec![
            step(1, 0, StepPoint::ForcedAcquired { cell: 4 }),
            step(2, 0, StepPoint::ForcedAcquired { cell: 2 }),
        ];
        assert_eq!(
            ForcedOrderChecker.check_trace(&trace),
            Some(Violation::ForcedOrder { proc: 0, prev_cell: 4, cell: 2, at: 2 })
        );
        // A repeated claim is equally fatal: strictly increasing, not
        // merely non-decreasing (re-walks short-circuit held cells, so a
        // repeat means the sweep re-claimed).
        let trace = vec![
            step(1, 0, StepPoint::ForcedAcquired { cell: 3 }),
            step(2, 0, StepPoint::ForcedAcquired { cell: 3 }),
        ];
        assert!(ForcedOrderChecker.check_trace(&trace).is_some());
    }

    #[test]
    fn forced_order_resets_at_episode_boundaries() {
        // Two forced transactions back to back: each may restart low once
        // the first is decided / the next is published.
        let trace = vec![
            step(1, 0, StepPoint::ForcedAcquired { cell: 5 }),
            step(2, 0, StepPoint::Decided { committed: true }),
            step(3, 0, StepPoint::TxPublished),
            step(4, 0, StepPoint::ForcedAcquired { cell: 1 }),
            step(5, 0, StepPoint::ForcedAcquired { cell: 2 }),
        ];
        assert_eq!(ForcedOrderChecker.check_trace(&trace), None);
    }

    #[test]
    fn forced_order_is_per_processor() {
        // Interleaved episodes on different procs don't constrain each other.
        let trace = vec![
            step(1, 0, StepPoint::ForcedAcquired { cell: 7 }),
            step(2, 1, StepPoint::ForcedAcquired { cell: 3 }),
            step(3, 0, StepPoint::ForcedAcquired { cell: 8 }),
            step(4, 1, StepPoint::ForcedAcquired { cell: 4 }),
        ];
        assert_eq!(ForcedOrderChecker.check_trace(&trace), None);
        // ...but a regression on one proc is still caught amid the noise.
        let trace = vec![
            step(1, 0, StepPoint::ForcedAcquired { cell: 7 }),
            step(2, 1, StepPoint::ForcedAcquired { cell: 9 }),
            step(3, 1, StepPoint::ForcedAcquired { cell: 1 }),
        ];
        assert_eq!(
            ForcedOrderChecker.check_trace(&trace),
            Some(Violation::ForcedOrder { proc: 1, prev_cell: 9, cell: 1, at: 3 })
        );
    }
}
