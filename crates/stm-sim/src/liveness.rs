//! A trace-consuming progress monitor for the lock-freedom bound.
//!
//! The Shavit–Touitou guarantee is lock-freedom: *if non-crashed processors
//! keep taking steps, some transaction commits*. A crashed processor may
//! stall everyone briefly (its ownerships must be discovered and helped),
//! but it can never stall the system indefinitely.
//!
//! [`LivenessChecker`] turns that into a finite check over a recorded trace:
//! in any window of protocol activity — step announcements by processors
//! that never crash — longer than `commit_budget` cycles and containing at
//! least `min_steps` steps, some transaction must have committed (a
//! [`StepPoint::Decided`] with `committed: true`, from any processor). A
//! window that overruns the budget is reported as
//! [`Violation::NoProgress`].
//!
//! Tracing must be enabled ([`SimConfig::trace_limit`](crate::engine::SimConfig)
//! large enough to hold the run) for the check to be meaningful; an empty
//! trace trivially passes.

use std::collections::HashSet;

use stm_core::step::StepPoint;

use crate::engine::{SimReport, Violation};
use crate::trace::{TraceEvent, TraceKind};

/// Configurable lock-freedom monitor over a recorded trace.
#[derive(Debug, Clone, Copy)]
pub struct LivenessChecker {
    /// Maximum virtual cycles of protocol activity allowed between commits.
    pub commit_budget: u64,
    /// Minimum protocol steps (by non-crashed processors) in the window
    /// before a budget overrun counts as a violation — filters the finite
    /// tail of cleanup work after the last commit of a run.
    pub min_steps: usize,
}

impl Default for LivenessChecker {
    fn default() -> Self {
        LivenessChecker { commit_budget: 100_000, min_steps: 40 }
    }
}

impl LivenessChecker {
    /// A checker with the given commit budget and the default step floor.
    pub fn with_budget(commit_budget: u64) -> Self {
        LivenessChecker { commit_budget, ..Default::default() }
    }

    /// Check a finished run. Returns the first violation found: the engine's
    /// own watchdog verdict if it halted the run, otherwise the first
    /// no-progress window in the trace.
    pub fn check(&self, report: &SimReport) -> Option<Violation> {
        if let Some(v) = &report.violation {
            return Some(v.clone());
        }
        self.check_trace(&report.trace, &report.crashed)
    }

    /// Check a raw trace, ignoring protocol steps of `crashed` processors.
    pub fn check_trace(&self, trace: &[TraceEvent], crashed: &[usize]) -> Option<Violation> {
        let crashed: HashSet<usize> = crashed.iter().copied().collect();
        // The engine records events at issue in grant order, which is not
        // globally time-sorted; sort a copy (stable, so simultaneous events
        // keep their recording order).
        let mut events: Vec<&TraceEvent> = trace.iter().collect();
        events.sort_by_key(|e| e.time);

        let mut window_start = 0u64;
        let mut steps = 0usize;
        for e in events {
            match e.kind {
                TraceKind::Step(StepPoint::Decided { committed: true }) => {
                    // A commit is progress no matter who achieved it — even a
                    // processor that crashes later.
                    window_start = e.time;
                    steps = 0;
                }
                TraceKind::Step(_) if !crashed.contains(&e.proc) => {
                    steps += 1;
                    if steps >= self.min_steps && e.time.saturating_sub(window_start) > self.commit_budget
                    {
                        return Some(Violation::NoProgress {
                            window_start,
                            at: e.time,
                            steps,
                        });
                    }
                }
                _ => {}
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stm_core::step::StepPoint;

    fn step(time: u64, proc: usize, point: StepPoint) -> TraceEvent {
        TraceEvent { time, proc, kind: TraceKind::Step(point) }
    }

    #[test]
    fn commits_reset_the_window() {
        let checker = LivenessChecker { commit_budget: 100, min_steps: 2 };
        let mut trace = Vec::new();
        // Steady commits every 50 cycles, with retries in between: fine.
        for i in 0..20u64 {
            trace.push(step(i * 50, 0, StepPoint::AcquireAttempt { j: 0 }));
            trace.push(step(i * 50 + 10, 1, StepPoint::AcquireAttempt { j: 0 }));
            trace.push(step(i * 50 + 20, 0, StepPoint::Decided { committed: true }));
        }
        assert_eq!(checker.check_trace(&trace, &[]), None);
    }

    #[test]
    fn silent_window_is_flagged() {
        let checker = LivenessChecker { commit_budget: 100, min_steps: 3 };
        let mut trace = vec![step(10, 0, StepPoint::Decided { committed: true })];
        // Activity without commits well past the budget.
        for i in 0..10u64 {
            trace.push(step(50 + i * 40, 1, StepPoint::AcquireAttempt { j: 0 }));
        }
        match checker.check_trace(&trace, &[]) {
            Some(Violation::NoProgress { window_start: 10, at, steps }) => {
                assert!(at > 110);
                assert!(steps >= 3);
            }
            other => panic!("expected NoProgress, got {other:?}"),
        }
    }

    #[test]
    fn crashed_processor_steps_do_not_count_as_activity() {
        let checker = LivenessChecker { commit_budget: 100, min_steps: 3 };
        // Only the crashed processor is active past the budget: that is not
        // a lock-freedom violation (nobody live is being starved).
        let trace: Vec<TraceEvent> =
            (0..10u64).map(|i| step(i * 100, 2, StepPoint::AcquireAttempt { j: 0 })).collect();
        assert_eq!(checker.check_trace(&trace, &[2]), None);
        assert!(checker.check_trace(&trace, &[]).is_some());
    }

    #[test]
    fn min_steps_filters_sparse_tails() {
        let checker = LivenessChecker { commit_budget: 100, min_steps: 5 };
        // Two trailing cleanup steps long after the last commit: fine.
        let trace = vec![
            step(10, 0, StepPoint::Decided { committed: true }),
            step(5000, 1, StepPoint::BeforeRelease { j: 0 }),
            step(5010, 1, StepPoint::BeforeRelease { j: 1 }),
        ];
        assert_eq!(checker.check_trace(&trace, &[]), None);
    }
}
