//! Operation statistics collected by the simulation engine.

use stm_core::step::StepPoint;

use crate::arch::OpKind;

/// Per-processor and aggregate counts of simulated memory operations, plus
/// protocol-level counters tallied from the [`StepPoint`] announcements
/// flowing through [`SimPort::step`](crate::engine::SimPort): transaction
/// decisions (commit/abort) and helping spans. The protocol counters need no
/// observer threading in the workload — every run gets them for free.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimStats {
    reads: Vec<u64>,
    writes: Vec<u64>,
    cas: Vec<u64>,
    commits: Vec<u64>,
    aborts: Vec<u64>,
    helps: Vec<u64>,
    steps: Vec<u64>,
}

impl SimStats {
    /// Fresh counters for `n_procs` processors.
    pub fn new(n_procs: usize) -> Self {
        SimStats {
            reads: vec![0; n_procs],
            writes: vec![0; n_procs],
            cas: vec![0; n_procs],
            commits: vec![0; n_procs],
            aborts: vec![0; n_procs],
            helps: vec![0; n_procs],
            steps: vec![0; n_procs],
        }
    }

    /// Record one operation by `proc`.
    pub fn record(&mut self, proc: usize, kind: OpKind) {
        match kind {
            OpKind::Read => self.reads[proc] += 1,
            OpKind::Write => self.writes[proc] += 1,
            OpKind::Cas => self.cas[proc] += 1,
        }
    }

    /// Record one protocol step announcement by `proc`. Decisions are
    /// credited to the *announcing* processor (a helper that decides another
    /// processor's transaction counts it here), so the totals count every
    /// decided transaction exactly once.
    pub fn record_step(&mut self, proc: usize, point: &StepPoint) {
        self.steps[proc] += 1;
        match *point {
            StepPoint::Decided { committed: true } => self.commits[proc] += 1,
            StepPoint::Decided { committed: false } => self.aborts[proc] += 1,
            StepPoint::HelpBegin { .. } => self.helps[proc] += 1,
            _ => {}
        }
    }

    /// Total operations across all processors.
    pub fn total_ops(&self) -> u64 {
        self.reads.iter().sum::<u64>()
            + self.writes.iter().sum::<u64>()
            + self.cas.iter().sum::<u64>()
    }

    /// Total reads / writes / CASes.
    pub fn totals(&self) -> (u64, u64, u64) {
        (
            self.reads.iter().sum(),
            self.writes.iter().sum(),
            self.cas.iter().sum(),
        )
    }

    /// Operations issued by processor `p` (reads, writes, cas).
    pub fn per_proc(&self, p: usize) -> (u64, u64, u64) {
        (self.reads[p], self.writes[p], self.cas[p])
    }

    /// Total transaction commit decisions announced.
    pub fn commits(&self) -> u64 {
        self.commits.iter().sum()
    }

    /// Total transaction abort (failure) decisions announced.
    pub fn aborts(&self) -> u64 {
        self.aborts.iter().sum()
    }

    /// Total helping spans entered.
    pub fn helps(&self) -> u64 {
        self.helps.iter().sum()
    }

    /// Total protocol step announcements.
    pub fn steps(&self) -> u64 {
        self.steps.iter().sum()
    }

    /// Protocol counters of processor `p`: (commits, aborts, helps, steps)
    /// announced by that processor.
    pub fn protocol_per_proc(&self, p: usize) -> (u64, u64, u64, u64) {
        (self.commits[p], self.aborts[p], self.helps[p], self.steps[p])
    }

    /// Number of processors tracked.
    pub fn n_procs(&self) -> usize {
        self.reads.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_totals() {
        let mut s = SimStats::new(2);
        s.record(0, OpKind::Read);
        s.record(0, OpKind::Cas);
        s.record(1, OpKind::Write);
        assert_eq!(s.total_ops(), 3);
        assert_eq!(s.totals(), (1, 1, 1));
        assert_eq!(s.per_proc(0), (1, 0, 1));
        assert_eq!(s.per_proc(1), (0, 1, 0));
        assert_eq!(s.n_procs(), 2);
    }

    #[test]
    fn records_protocol_steps() {
        let mut s = SimStats::new(2);
        s.record_step(0, &StepPoint::TxPublished);
        s.record_step(0, &StepPoint::Decided { committed: true });
        s.record_step(1, &StepPoint::Decided { committed: false });
        s.record_step(1, &StepPoint::HelpBegin { owner: 0 });
        s.record_step(1, &StepPoint::Decided { committed: true });
        assert_eq!(s.commits(), 2);
        assert_eq!(s.aborts(), 1);
        assert_eq!(s.helps(), 1);
        assert_eq!(s.steps(), 5);
        assert_eq!(s.protocol_per_proc(0), (1, 0, 0, 2));
        assert_eq!(s.protocol_per_proc(1), (1, 1, 1, 3));
    }
}
