//! Operation statistics collected by the simulation engine.

use crate::arch::OpKind;

/// Per-processor and aggregate counts of simulated memory operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimStats {
    reads: Vec<u64>,
    writes: Vec<u64>,
    cas: Vec<u64>,
}

impl SimStats {
    /// Fresh counters for `n_procs` processors.
    pub fn new(n_procs: usize) -> Self {
        SimStats { reads: vec![0; n_procs], writes: vec![0; n_procs], cas: vec![0; n_procs] }
    }

    /// Record one operation by `proc`.
    pub fn record(&mut self, proc: usize, kind: OpKind) {
        match kind {
            OpKind::Read => self.reads[proc] += 1,
            OpKind::Write => self.writes[proc] += 1,
            OpKind::Cas => self.cas[proc] += 1,
        }
    }

    /// Total operations across all processors.
    pub fn total_ops(&self) -> u64 {
        self.reads.iter().sum::<u64>()
            + self.writes.iter().sum::<u64>()
            + self.cas.iter().sum::<u64>()
    }

    /// Total reads / writes / CASes.
    pub fn totals(&self) -> (u64, u64, u64) {
        (
            self.reads.iter().sum(),
            self.writes.iter().sum(),
            self.cas.iter().sum(),
        )
    }

    /// Operations issued by processor `p` (reads, writes, cas).
    pub fn per_proc(&self, p: usize) -> (u64, u64, u64) {
        (self.reads[p], self.writes[p], self.cas[p])
    }

    /// Number of processors tracked.
    pub fn n_procs(&self) -> usize {
        self.reads.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_totals() {
        let mut s = SimStats::new(2);
        s.record(0, OpKind::Read);
        s.record(0, OpKind::Cas);
        s.record(1, OpKind::Write);
        assert_eq!(s.total_ops(), 3);
        assert_eq!(s.totals(), (1, 1, 1));
        assert_eq!(s.per_proc(0), (1, 0, 1));
        assert_eq!(s.per_proc(1), (0, 1, 0));
        assert_eq!(s.n_procs(), 2);
    }
}
