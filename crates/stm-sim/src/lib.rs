//! # stm-sim — a deterministic Proteus-like multiprocessor simulator
//!
//! The Shavit–Touitou paper evaluated STM on the Proteus simulator, running
//! up to 64 simulated processors on two architectures: a cache-coherent bus
//! machine and an Alewife-like distributed-shared-memory mesh. This crate
//! provides the equivalent substrate for the reproduction:
//!
//! * [`engine`] — a lockstep discrete-event engine: one host thread per
//!   simulated processor, every shared-memory operation charged a virtual
//!   cycle cost and applied in global completion-time order. Fully
//!   deterministic given a seed.
//! * [`arch`] — the architecture cost models: [`arch::BusModel`] (snoopy
//!   caches + one shared bus), [`arch::MeshModel`] (home nodes + per-hop
//!   latency + hot-spot queueing), and [`arch::UniformModel`] (ideal
//!   machine, for tests and ablations).
//! * [`harness`] — [`harness::StmSim`], an STM instance wired into a
//!   simulated machine: the building block of every figure regeneration.
//! * [`faults`] — scripted fault injection: crash, stall, or slow any
//!   processor at any named protocol step (see [`stm_core::step`]) or
//!   virtual-clock deadline, delivered deterministically by the engine.
//! * [`liveness`] — [`liveness::LivenessChecker`], a trace-consuming
//!   progress monitor asserting the paper's lock-freedom bound, and
//!   [`liveness::ForcedOrderChecker`], asserting the forced-priority tier's
//!   ascending-acquisition invariant.
//! * [`explore`] — seed-sweeping schedule exploration with failing-seed
//!   replay, the systematic crash matrix, a seeded fault-plan fuzzer, and a
//!   counterexample shrinker.
//! * [`stats`] — per-processor operation and protocol counters.
//! * [`perfetto`] — Chrome-trace-event (Perfetto) export of engine traces:
//!   open a fault-injection run at `ui.perfetto.dev` instead of reading a
//!   text dump.
//!
//! Any code written against [`stm_core::machine::MemPort`] runs unmodified on
//! the simulator — the STM itself, the lock baselines, and the benchmark data
//! structures all do.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod arch;
pub mod engine;
pub mod explore;
pub mod faults;
pub mod harness;
pub mod liveness;
pub mod perfetto;
pub mod stats;
pub mod trace;

pub use arch::{BusModel, CostModel, MeshModel, OpKind, UniformModel};
pub use engine::{SimConfig, SimPort, SimReport, Simulation, Violation};
pub use faults::{Fault, FaultKind, FaultPlan, Trigger};
pub use harness::StmSim;
pub use liveness::{ForcedOrderChecker, LivenessChecker};
