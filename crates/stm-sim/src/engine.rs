//! The lockstep discrete-event simulation engine.
//!
//! Each simulated processor is a host thread that runs its workload closure
//! against a [`SimPort`] (an implementation of
//! [`stm_core::machine::MemPort`]). Exactly **one** processor
//! executes at any wall-clock instant: when a processor issues a memory
//! operation, the architecture [`CostModel`] assigns
//! it a completion time on the virtual clock, the processor parks, and the
//! engine grants the globally earliest pending operation. The effect of each
//! operation is applied atomically at its completion time, so the simulated
//! execution is a deterministic (seed-controlled) interleaving — the same
//! property the paper relied on Proteus for, plus exact reproducibility.
//!
//! Determinism: given the same configuration, seed, model, and workload, the
//! grant order, all memory contents, and all timings are identical on every
//! run. The seed perturbs completion times by a small jitter, which is how
//! the schedule-exploration tests enumerate distinct interleavings.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use stm_core::machine::MemPort;
use stm_core::step::StepPoint;
use stm_core::word::{Addr, Word};

use crate::arch::{CostModel, OpKind};
use crate::faults::{CrashSignal, FaultKind, FaultPlan, ProcFaults};
use crate::stats::SimStats;

/// Panic payload used to unwind processors after a structured halt (watchdog
/// violation). Recognized — and swallowed — by [`Simulation::run`].
pub(crate) struct HaltSignal;

thread_local! {
    /// Set immediately before a *planned* unwind (scripted crash or
    /// structured halt) so the panic hook stays silent for it.
    static PLANNED_UNWIND: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Unwind the current simulated processor with a planned payload
/// ([`CrashSignal`] or [`HaltSignal`]) without the default panic hook
/// printing a backtrace: planned deaths are simulation events, not host
/// failures. Genuine workload panics take the normal path and stay loud.
pub(crate) fn planned_unwind<T: Send + 'static>(payload: T) -> ! {
    static SILENCER: std::sync::Once = std::sync::Once::new();
    SILENCER.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if PLANNED_UNWIND.with(|f| f.replace(false)) {
                return;
            }
            prev(info);
        }));
    });
    PLANNED_UNWIND.with(|f| f.set(true));
    panic::panic_any(payload)
}

/// Configuration of a simulation run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Number of shared memory words.
    pub n_words: usize,
    /// RNG seed controlling tie-breaking jitter.
    pub seed: u64,
    /// Maximum jitter (cycles) added to each operation's completion time;
    /// `0` gives the pure cost-model schedule.
    pub jitter: u64,
    /// Watchdog: if the virtual clock exceeds this, the run halts and
    /// reports a structured [`Violation::Watchdog`] on the
    /// [`SimReport`] (it does *not* panic). Guards tests against
    /// livelock/deadlock bugs.
    pub max_cycles: u64,
    /// Words to pre-load into memory before the first cycle (address, value).
    pub init: Vec<(Addr, Word)>,
    /// Record up to this many [`TraceEvent`](crate::trace::TraceEvent)s
    /// (0 disables tracing).
    pub trace_limit: usize,
    /// Scripted faults to deliver during the run (default: none).
    pub faults: FaultPlan,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            n_words: 0,
            seed: 0,
            jitter: 0,
            max_cycles: 1 << 33,
            init: Vec::new(),
            trace_limit: 0,
            faults: FaultPlan::new(),
        }
    }
}

impl SimConfig {
    /// Convenience constructor: `n_words` of memory with defaults otherwise.
    pub fn with_words(n_words: usize) -> Self {
        SimConfig { n_words, ..Default::default() }
    }
}

/// A structured liveness violation attached to a [`SimReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// The virtual clock exceeded [`SimConfig::max_cycles`]: the system as a
    /// whole ran past its budget without finishing (livelock, deadlock, or a
    /// runaway workload).
    Watchdog {
        /// Processor whose operation first crossed the limit.
        proc: usize,
        /// Completion time of the offending operation.
        at: u64,
        /// The configured limit.
        limit: u64,
    },
    /// Non-crashed processors kept taking protocol steps, but no transaction
    /// committed within the configured budget — the lock-freedom bound was
    /// missed. Produced by [`crate::liveness::LivenessChecker`].
    NoProgress {
        /// Time of the last commit (or run start) before the silent window.
        window_start: u64,
        /// Time at which the budget was exceeded.
        at: u64,
        /// Protocol steps taken by non-crashed processors in the window.
        steps: usize,
    },
    /// Every live processor was parked on a retry watch with no pending
    /// event left to change memory: the blocking composition deadlocked.
    /// Reported structurally (like a watchdog trip) rather than poisoning
    /// the engine, so tests can assert on it.
    RetryDeadlock {
        /// Processors parked when the engine ran out of events, ascending.
        parked: Vec<usize>,
        /// Virtual clock when the deadlock was detected.
        at: u64,
    },
    /// A forced-priority acquisition sweep claimed locations out of
    /// ascending cell order — the invariant that makes the forced tier's
    /// never-self-fail sweep deadlock-free. Produced by
    /// [`crate::liveness::ForcedOrderChecker`].
    ForcedOrder {
        /// Processor whose forced episode regressed.
        proc: usize,
        /// Cell index of the previous claim in the episode.
        prev_cell: usize,
        /// Cell index of the offending (non-increasing) claim.
        cell: usize,
        /// Virtual time of the offending claim.
        at: u64,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            Violation::Watchdog { proc, at, limit } => write!(
                f,
                "watchdog: P{proc} reached cycle {at}, past the {limit}-cycle limit"
            ),
            Violation::NoProgress { window_start, at, steps } => write!(
                f,
                "no progress: {steps} protocol steps between cycles {window_start} and {at} without a commit"
            ),
            Violation::RetryDeadlock { ref parked, at } => {
                write!(f, "retry deadlock: at cycle {at} every live processor was parked (")?;
                for (i, p) in parked.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "P{p}")?;
                }
                write!(f, ") with no writer left to wake them")
            }
            Violation::ForcedOrder { proc, prev_cell, cell, at } => write!(
                f,
                "forced order: P{proc} claimed cell {cell} after cell {prev_cell} at cycle {at}"
            ),
        }
    }
}

/// Result of a completed simulation.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Virtual cycles at which the last processor finished.
    pub cycles: u64,
    /// Aggregate operation statistics.
    pub stats: SimStats,
    /// Final contents of the shared memory.
    pub memory: Vec<Word>,
    /// Recorded events, if tracing was enabled (see
    /// [`SimConfig::trace_limit`]).
    pub trace: Vec<crate::trace::TraceEvent>,
    /// Structured violation, if the watchdog halted the run.
    pub violation: Option<Violation>,
    /// Processors crashed by the fault plan, in ascending order.
    pub crashed: Vec<usize>,
    /// Events that would have been traced but fell past
    /// [`SimConfig::trace_limit`]. Nonzero means [`SimReport::trace`] is a
    /// truncated prefix of the execution, not the whole story.
    pub trace_dropped: u64,
}

/// Park timestamp plus the watched `(addr, word)` pairs of one parked proc.
type ParkedWaiter = (u64, Vec<(Addr, Word)>);

struct SimState {
    mem: Vec<Word>,
    model: Box<dyn CostModel>,
    /// Pending operations: earliest (time, issue-seq, proc) first.
    queue: BinaryHeap<Reverse<(u64, u64, usize)>>,
    /// Which processor is currently granted/executing user code.
    running: Option<usize>,
    granted: Vec<bool>,
    /// Per-proc park state: `Some((t_parked, watches))` while the proc sits
    /// in [`SimPort::wait_on`] with **no** pending queue event — a parked
    /// processor consumes zero scheduler steps until a notify re-queues it.
    parked: Vec<Option<ParkedWaiter>>,
    parked_count: usize,
    /// Virtual time a notify assigned to each proc's next wakeup.
    wake_time: Vec<u64>,
    finished: usize,
    n_procs: usize,
    seq: u64,
    clock: u64,
    rng: SmallRng,
    stats: SimStats,
    poisoned: bool,
    /// Structured halt: the watchdog tripped; every processor unwinds with
    /// [`HaltSignal`] and the run returns a report with `violation` set.
    halted: bool,
    violation: Option<Violation>,
    crashed: Vec<usize>,
    trace: Vec<crate::trace::TraceEvent>,
    trace_limit: usize,
    trace_dropped: u64,
}

impl SimState {
    fn record_trace(&mut self, time: u64, proc: usize, kind: crate::trace::TraceKind) {
        if self.trace.len() < self.trace_limit {
            self.trace.push(crate::trace::TraceEvent { time, proc, kind });
        } else if self.trace_limit > 0 {
            // The trace is full: count what it silently loses, so reports
            // and renderings can say "truncated" instead of lying by
            // omission. (trace_limit == 0 means tracing is off entirely —
            // nothing is "dropped" from a trace nobody asked for.)
            self.trace_dropped += 1;
        }
    }
}

struct Shared {
    state: Mutex<SimState>,
    proc_cvs: Vec<Condvar>,
    main_cv: Condvar,
    max_cycles: u64,
    n_words: usize,
}

impl Shared {
    /// Grant the earliest pending operation, if no processor is executing.
    /// Must be called with the state lock held.
    fn schedule_next(&self, st: &mut SimState) {
        if st.running.is_some() {
            return;
        }
        if st.poisoned || st.halted {
            // Wake everyone so they can observe the poison/halt and unwind.
            for cv in &self.proc_cvs {
                cv.notify_all();
            }
            self.main_cv.notify_all();
            return;
        }
        if let Some(&Reverse((t, _, p))) = st.queue.peek() {
            st.queue.pop();
            st.clock = st.clock.max(t);
            st.granted[p] = true;
            st.running = Some(p);
            self.proc_cvs[p].notify_one();
        } else if st.finished == st.n_procs {
            self.main_cv.notify_all();
        } else if st.parked_count > 0 && st.finished + st.parked_count == st.n_procs {
            // Every live processor is parked on a retry watch and no event
            // remains to change memory: a genuine blocking deadlock. Halt
            // structurally (the report carries the violation) instead of
            // poisoning — this is a workload property, not an engine bug.
            st.halted = true;
            if st.violation.is_none() {
                let parked: Vec<usize> = st
                    .parked
                    .iter()
                    .enumerate()
                    .filter_map(|(p, e)| e.as_ref().map(|_| p))
                    .collect();
                st.violation = Some(Violation::RetryDeadlock { parked, at: st.clock });
            }
            for cv in &self.proc_cvs {
                cv.notify_all();
            }
            self.main_cv.notify_all();
        } else {
            // Every live processor must be running, queued, or done; an empty
            // queue with nobody running means the engine lost a wakeup.
            st.poisoned = true;
            for cv in &self.proc_cvs {
                cv.notify_all();
            }
            self.main_cv.notify_all();
        }
    }
}

/// A simulated processor's port into the shared memory.
///
/// Implements [`MemPort`]; obtained only inside
/// [`Simulation::run`] workload closures.
pub struct SimPort {
    shared: Arc<Shared>,
    proc: usize,
    n_procs: usize,
    t_local: u64,
    jitter: u64,
    done: bool,
    faults: ProcFaults,
    /// Slow-down multiplier from a delivered [`FaultKind::SlowBy`] (1 = normal).
    slow_mult: u64,
    /// Re-entrancy guard: set while delivering a fault (a stall runs through
    /// `delay`, which must not evaluate further faults recursively).
    in_fault: bool,
}

impl std::fmt::Debug for SimPort {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimPort")
            .field("proc", &self.proc)
            .field("t_local", &self.t_local)
            .finish()
    }
}

impl SimPort {
    /// Block until this processor's pending event (queued at `t_complete`)
    /// is granted, then run `apply` on the shared state at that instant.
    fn complete<R>(&mut self, t_complete: u64, apply: impl FnOnce(&mut SimState) -> R) -> R {
        let shared = Arc::clone(&self.shared);
        let mut st = shared.state.lock();
        loop {
            if st.poisoned {
                drop(st);
                panic!("simulation poisoned by a failing co-processor");
            }
            if st.halted {
                drop(st);
                planned_unwind(HaltSignal);
            }
            if st.granted[self.proc] {
                break;
            }
            shared.proc_cvs[self.proc].wait(&mut st);
        }
        st.granted[self.proc] = false;
        debug_assert_eq!(st.running, Some(self.proc));
        self.t_local = t_complete;
        apply(&mut st)
    }

    /// Issue a memory operation: charge it via the cost model, park until it
    /// is globally next, apply its effect.
    fn mem_op<R>(&mut self, kind: OpKind, addr: Addr, apply: impl FnOnce(&mut SimState) -> R) -> R {
        assert!(addr < self.shared.n_words, "address {addr} out of simulated memory");
        self.check_cycle_faults();
        let shared = Arc::clone(&self.shared);
        let t_complete;
        {
            let mut st = shared.state.lock();
            if st.halted {
                drop(st);
                planned_unwind(HaltSignal);
            }
            let base = st.model.access(self.t_local, self.proc, kind, addr);
            let duration = base.saturating_sub(self.t_local) * self.slow_mult;
            let jitter = if self.jitter > 0 { st.rng.gen_range(0..=self.jitter) } else { 0 };
            t_complete = self.t_local + duration + jitter;
            if t_complete > shared.max_cycles {
                self.trip_watchdog(&shared, st, t_complete);
            }
            st.stats.record(self.proc, kind);
            st.record_trace(t_complete, self.proc, crate::trace::TraceKind::Mem(kind, addr));
            let seq = st.seq;
            st.seq += 1;
            st.queue.push(Reverse((t_complete, seq, self.proc)));
            st.running = None;
            shared.schedule_next(&mut st);
        }
        self.complete(t_complete, apply)
    }

    /// Watchdog trip: record a structured violation, halt every processor,
    /// and unwind this one. Never returns.
    fn trip_watchdog(
        &self,
        shared: &Arc<Shared>,
        mut st: parking_lot::MutexGuard<'_, SimState>,
        at: u64,
    ) -> ! {
        st.halted = true;
        if st.violation.is_none() {
            st.violation =
                Some(Violation::Watchdog { proc: self.proc, at, limit: shared.max_cycles });
        }
        st.running = None;
        shared.schedule_next(&mut st);
        drop(st);
        planned_unwind(HaltSignal);
    }

    /// Evaluate (and deliver) any cycle-triggered fault due at local time.
    fn check_cycle_faults(&mut self) {
        if self.in_fault || self.faults.is_empty() {
            return;
        }
        if let Some(kind) = self.faults.on_cycle(self.t_local) {
            self.deliver(kind);
        }
    }

    /// Deliver one fired fault. May panic (crash) or advance time (stall).
    fn deliver(&mut self, kind: FaultKind) {
        self.in_fault = true;
        match kind {
            FaultKind::Crash => {
                let shared = Arc::clone(&self.shared);
                {
                    let mut st = shared.state.lock();
                    st.crashed.push(self.proc);
                    st.record_trace(self.t_local, self.proc, crate::trace::TraceKind::FaultCrash);
                }
                // Unwind the workload closure; SimPort::drop marks this
                // processor finished and reschedules, exactly as an early
                // return ("crash") does.
                planned_unwind(CrashSignal { proc: self.proc });
            }
            FaultKind::Stall { cycles } => {
                {
                    let mut st = self.shared.state.lock();
                    let t = self.t_local;
                    let p = self.proc;
                    st.record_trace(t, p, crate::trace::TraceKind::FaultStall(cycles));
                }
                self.delay(cycles);
            }
            FaultKind::SlowBy { factor } => {
                let mut st = self.shared.state.lock();
                let t = self.t_local;
                let p = self.proc;
                st.record_trace(t, p, crate::trace::TraceKind::FaultSlow(factor));
                self.slow_mult = self.slow_mult.saturating_mul(factor.max(1));
            }
        }
        self.in_fault = false;
    }

    fn with(shared: Arc<Shared>, proc: usize, n_procs: usize, jitter: u64, faults: ProcFaults) -> Self {
        SimPort {
            shared,
            proc,
            n_procs,
            t_local: 0,
            jitter,
            done: false,
            faults,
            slow_mult: 1,
            in_fault: false,
        }
    }
}

impl MemPort for SimPort {
    fn proc_id(&self) -> usize {
        self.proc
    }

    fn n_procs(&self) -> usize {
        self.n_procs
    }

    fn read(&mut self, addr: Addr) -> Word {
        self.mem_op(OpKind::Read, addr, |st| st.mem[addr])
    }

    fn write(&mut self, addr: Addr, value: Word) {
        self.mem_op(OpKind::Write, addr, |st| st.mem[addr] = value)
    }

    fn compare_exchange(&mut self, addr: Addr, expected: Word, new: Word) -> Result<(), Word> {
        self.mem_op(OpKind::Cas, addr, |st| {
            let cur = st.mem[addr];
            if cur == expected {
                st.mem[addr] = new;
                Ok(())
            } else {
                Err(cur)
            }
        })
    }

    fn delay(&mut self, cycles: u64) {
        // Purely local time: park until the virtual clock reaches it, with no
        // memory traffic and no contention effects.
        let cycles = cycles.saturating_mul(self.slow_mult);
        let shared = Arc::clone(&self.shared);
        let t_complete;
        {
            let mut st = shared.state.lock();
            if st.halted {
                drop(st);
                planned_unwind(HaltSignal);
            }
            t_complete = self.t_local + cycles;
            if t_complete > shared.max_cycles {
                self.trip_watchdog(&shared, st, t_complete);
            }
            st.record_trace(t_complete, self.proc, crate::trace::TraceKind::Delay(cycles));
            let seq = st.seq;
            st.seq += 1;
            st.queue.push(Reverse((t_complete, seq, self.proc)));
            st.running = None;
            shared.schedule_next(&mut st);
        }
        self.complete(t_complete, |_| ());
    }

    fn now(&self) -> u64 {
        self.t_local
    }

    fn wait_on(&mut self, watches: &[(Addr, Word)], _max_park_micros: u64) {
        // The cap is a wall-clock concern; on the simulator a park either
        // ends with a wakeup or the run ends structurally (deadlock
        // violation / watchdog), so it is ignored here.
        let shared = Arc::clone(&self.shared);
        let mut st = shared.state.lock();
        if st.poisoned {
            drop(st);
            panic!("simulation poisoned by a failing co-processor");
        }
        if st.halted {
            drop(st);
            planned_unwind(HaltSignal);
        }
        // Registration and revalidation are one atomic step under the engine
        // lock (the sim analogue of the host's register-then-revalidate, see
        // docs/protocol.md §14): a writer that already changed a watched
        // word cannot have its notify lost, because we observe the change
        // right here and decline to park.
        if watches.iter().any(|&(a, w)| st.mem[a] != w) {
            return;
        }
        let t = self.t_local;
        st.record_trace(t, self.proc, crate::trace::TraceKind::Park(watches.len()));
        st.parked[self.proc] = Some((t, watches.to_vec()));
        st.parked_count += 1;
        st.running = None;
        shared.schedule_next(&mut st);
        // Unlike `complete`, a parked processor has NO pending queue event:
        // it takes zero scheduler steps until a committing writer's notify
        // re-queues it (that is the acceptance criterion the blocking tests
        // pin). The wakeup time is whatever the notifier assigned.
        loop {
            if st.poisoned {
                drop(st);
                panic!("simulation poisoned by a failing co-processor");
            }
            if st.halted {
                drop(st);
                planned_unwind(HaltSignal);
            }
            if st.granted[self.proc] {
                break;
            }
            shared.proc_cvs[self.proc].wait(&mut st);
        }
        st.granted[self.proc] = false;
        debug_assert_eq!(st.running, Some(self.proc));
        self.t_local = st.wake_time[self.proc];
    }

    fn notify(&mut self, addr: Addr) {
        // Announcements ride the install write the cost model already
        // charged: the notifier keeps its grant, pays no cycles, and pushes
        // no event of its own — so default (non-blocking) schedules are
        // bit-identical whether or not anyone ever parks.
        let shared = Arc::clone(&self.shared);
        let mut st = shared.state.lock();
        if st.parked_count == 0 {
            return;
        }
        let t_notify = self.t_local;
        for q in 0..st.n_procs {
            let fired = match &st.parked[q] {
                Some((_, watches)) => watches.iter().any(|&(a, w)| a == addr && st.mem[a] != w),
                None => false,
            };
            if !fired {
                continue;
            }
            let (t_parked, _) = st.parked[q].take().expect("checked Some above");
            st.parked_count -= 1;
            // The waiter slept from t_parked; it cannot wake before the
            // notifying install happened.
            let wake = t_parked.max(t_notify);
            st.wake_time[q] = wake;
            let seq = st.seq;
            st.seq += 1;
            st.queue.push(Reverse((wake, seq, q)));
            st.record_trace(wake, q, crate::trace::TraceKind::Wake(addr));
        }
    }

    fn step(&mut self, point: StepPoint) {
        // A step announcement costs no cycles and does not reschedule: the
        // announcing processor still holds the grant. It is recorded in the
        // trace (for the liveness checker and dump rendering) and evaluated
        // against this processor's fault script.
        {
            let mut st = self.shared.state.lock();
            if st.poisoned {
                drop(st);
                panic!("simulation poisoned by a failing co-processor");
            }
            if st.halted {
                drop(st);
                planned_unwind(HaltSignal);
            }
            let t = self.t_local;
            let p = self.proc;
            st.record_trace(t, p, crate::trace::TraceKind::Step(point));
            st.stats.record_step(p, &point);
        }
        if self.in_fault || self.faults.is_empty() {
            return;
        }
        if let Some(kind) = self.faults.on_step(point) {
            self.deliver(kind);
        }
        self.check_cycle_faults();
    }
}

impl Drop for SimPort {
    fn drop(&mut self) {
        if self.done {
            return;
        }
        let mut st = self.shared.state.lock();
        st.finished += 1;
        if st.running == Some(self.proc) {
            st.running = None;
        }
        if st.parked[self.proc].take().is_some() {
            // Unwound (crash fault / halt) while parked: the watch list dies
            // with the processor.
            st.parked_count -= 1;
        }
        st.clock = st.clock.max(self.t_local);
        self.shared.schedule_next(&mut st);
    }
}

/// A simulated multiprocessor execution.
///
/// # Examples
///
/// ```
/// use stm_core::machine::MemPort;
/// use stm_sim::arch::UniformModel;
/// use stm_sim::engine::{SimConfig, Simulation};
///
/// let report = Simulation::new(SimConfig::with_words(4), UniformModel::new(1, 10))
///     .run(2, |_proc| {
///         move |mut port: stm_sim::engine::SimPort| {
///             for _ in 0..100 {
///                 loop {
///                     let v = port.read(0);
///                     if port.compare_exchange(0, v, v + 1).is_ok() {
///                         break;
///                     }
///                 }
///             }
///         }
///     });
/// assert_eq!(report.memory[0], 200);
/// assert!(report.cycles > 0);
/// ```
pub struct Simulation {
    config: SimConfig,
    model: Box<dyn CostModel>,
}

impl Simulation {
    /// Create a simulation with `config` over architecture `model`.
    pub fn new(config: SimConfig, model: impl CostModel + 'static) -> Self {
        Simulation { config, model: Box::new(model) }
    }

    /// Run `n_procs` simulated processors; `make_body(p)` builds processor
    /// `p`'s workload. Returns when every processor's closure has returned.
    ///
    /// # Panics
    ///
    /// Panics if any workload closure panics, or if the watchdog trips.
    pub fn run<F, B>(self, n_procs: usize, mut make_body: F) -> SimReport
    where
        F: FnMut(usize) -> B,
        B: FnOnce(SimPort) + Send,
    {
        assert!(n_procs > 0, "need at least one processor");
        let mut mem = vec![0; self.config.n_words];
        for &(addr, value) in &self.config.init {
            mem[addr] = value;
        }
        let state = SimState {
            mem,
            model: self.model,
            queue: BinaryHeap::new(),
            running: None,
            granted: vec![false; n_procs],
            parked: vec![None; n_procs],
            parked_count: 0,
            wake_time: vec![0; n_procs],
            finished: 0,
            n_procs,
            seq: 0,
            clock: 0,
            rng: SmallRng::seed_from_u64(self.config.seed),
            stats: SimStats::new(n_procs),
            poisoned: false,
            halted: false,
            violation: None,
            crashed: Vec::new(),
            trace: Vec::new(),
            trace_limit: self.config.trace_limit,
            trace_dropped: 0,
        };
        let shared = Arc::new(Shared {
            state: Mutex::new(state),
            proc_cvs: (0..n_procs).map(|_| Condvar::new()).collect(),
            main_cv: Condvar::new(),
            max_cycles: self.config.max_cycles,
            n_words: self.config.n_words,
        });

        // Seed the queue: every processor starts with a wake-up event at t=0
        // so the engine owns the interleaving from the first instruction.
        {
            let mut st = shared.state.lock();
            for p in 0..n_procs {
                let seq = st.seq;
                st.seq += 1;
                st.queue.push(Reverse((0, seq, p)));
            }
            shared.schedule_next(&mut st);
        }

        let bodies: Vec<B> = (0..n_procs).map(&mut make_body).collect();
        let jitter = self.config.jitter;
        let fault_plan = self.config.faults.clone();
        let mut first_panic: Option<Box<dyn std::any::Any + Send>> = None;

        std::thread::scope(|s| {
            let mut handles = Vec::with_capacity(n_procs);
            for (p, body) in bodies.into_iter().enumerate() {
                let shared = Arc::clone(&shared);
                let faults = ProcFaults::for_proc(&fault_plan, p);
                handles.push(s.spawn(move || {
                    let mut port = SimPort::with(shared, p, n_procs, jitter, faults);
                    // Wait for the initial grant before running user code.
                    port.complete(0, |_| ());
                    let result = panic::catch_unwind(AssertUnwindSafe(|| body(port)));
                    // `port` was moved into the closure; its Drop (even on
                    // unwind) marked this processor done and rescheduled.
                    result
                }));
            }
            for h in handles {
                let payload = match h.join() {
                    Ok(Ok(())) => continue,
                    Ok(Err(payload)) => payload,
                    Err(payload) => payload,
                };
                // Planned crashes and structured halts are not failures.
                if payload.is::<CrashSignal>() || payload.is::<HaltSignal>() {
                    continue;
                }
                if first_panic.is_none() {
                    first_panic = Some(payload);
                }
            }
        });
        if let Some(payload) = first_panic {
            panic::resume_unwind(payload);
        }

        let st = shared.state.lock();
        let mut crashed = st.crashed.clone();
        crashed.sort_unstable();
        SimReport {
            cycles: st.clock,
            stats: st.stats.clone(),
            memory: st.mem.clone(),
            trace: st.trace.clone(),
            violation: st.violation.clone(),
            crashed,
            trace_dropped: st.trace_dropped,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::UniformModel;

    #[test]
    fn single_proc_sequences_reads_and_writes() {
        let report = Simulation::new(SimConfig::with_words(2), UniformModel::new(1, 5)).run(1, |_| {
            |mut port: SimPort| {
                port.write(0, 7);
                assert_eq!(port.read(0), 7);
                assert_eq!(port.compare_exchange(0, 7, 9), Ok(()));
                assert_eq!(port.compare_exchange(0, 7, 11), Err(9));
                assert_eq!(port.now(), 4 * 6); // 4 ops x (1 local + 5 mem)
            }
        });
        assert_eq!(report.memory[0], 9);
        assert_eq!(report.cycles, 24);
        assert_eq!(report.stats.total_ops(), 4);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            Simulation::new(
                SimConfig { n_words: 4, seed: 42, jitter: 3, ..Default::default() },
                UniformModel::new(1, 7),
            )
            .run(4, |p| {
                move |mut port: SimPort| {
                    for i in 0..50 {
                        let a = (p + i) % 4;
                        let v = port.read(a);
                        port.write(a, v.wrapping_add(p as u64 + 1));
                    }
                }
            })
        };
        let a = run();
        let b = run();
        assert_eq!(a.memory, b.memory);
        assert_eq!(a.cycles, b.cycles);
    }

    #[test]
    fn different_seeds_can_differ() {
        let run = |seed| {
            Simulation::new(
                SimConfig { n_words: 1, seed, jitter: 6, ..Default::default() },
                UniformModel::new(1, 7),
            )
            .run(3, |p| {
                move |mut port: SimPort| {
                    for _ in 0..30 {
                        let v = port.read(0);
                        // Last-writer-wins records the schedule in memory.
                        port.write(0, v.wrapping_mul(31).wrapping_add(p as u64 + 1));
                    }
                }
            })
        };
        let outcomes: Vec<u64> = (0..10).map(|s| run(s).memory[0]).collect();
        // With jitter, at least two seeds should produce distinct interleavings.
        assert!(outcomes.iter().any(|&o| o != outcomes[0]), "jitter produced no schedule diversity");
    }

    #[test]
    fn cas_tickets_are_unique_under_simulation() {
        const PROCS: usize = 8;
        const TICKETS: u64 = 200;
        let report = Simulation::new(
            SimConfig { n_words: 1 + TICKETS as usize, seed: 1, jitter: 2, ..Default::default() },
            UniformModel::new(1, 4),
        )
        .run(PROCS, |p| {
            move |mut port: SimPort| loop {
                let t = port.read(0);
                if t >= TICKETS {
                    break;
                }
                if port.compare_exchange(0, t, t + 1).is_ok() {
                    let prev = port.read(1 + t as usize);
                    assert_eq!(prev, 0, "ticket double-claimed");
                    port.write(1 + t as usize, p as u64 + 1);
                }
            }
        });
        assert!(report.memory[1..].iter().all(|&w| w >= 1 && w <= PROCS as u64));
    }

    #[test]
    fn early_return_models_a_crashed_processor() {
        // Proc 1 "crashes" immediately; the rest of the system still finishes.
        let report = Simulation::new(SimConfig::with_words(1), UniformModel::new(1, 3)).run(2, |p| {
            move |mut port: SimPort| {
                if p == 1 {
                    return; // crash
                }
                for _ in 0..10 {
                    let v = port.read(0);
                    port.write(0, v + 1);
                }
            }
        });
        assert_eq!(report.memory[0], 10);
    }

    #[test]
    fn watchdog_reports_structured_violation() {
        let report = Simulation::new(
            SimConfig { n_words: 1, max_cycles: 1000, ..Default::default() },
            UniformModel::new(1, 10),
        )
        .run(1, |_| {
            |mut port: SimPort| loop {
                let _ = port.read(0);
            }
        });
        match report.violation {
            Some(Violation::Watchdog { proc: 0, at, limit: 1000 }) => assert!(at > 1000),
            ref other => panic!("expected watchdog violation, got {other:?}"),
        }
    }

    #[test]
    fn watchdog_in_delay_reports_structured_violation() {
        // Satellite check: a runaway `delay` also halts structurally — the
        // sibling processor unwinds instead of deadlocking, and the report
        // carries the violation.
        let report = Simulation::new(
            SimConfig { n_words: 1, max_cycles: 1000, ..Default::default() },
            UniformModel::new(1, 2),
        )
        .run(2, |p| {
            move |mut port: SimPort| {
                if p == 0 {
                    port.delay(50_000);
                }
                loop {
                    let _ = port.read(0);
                }
            }
        });
        assert!(
            matches!(report.violation, Some(Violation::Watchdog { .. })),
            "{:?}",
            report.violation
        );
        assert!(report.crashed.is_empty());
    }

    #[test]
    fn scripted_crash_is_benign_and_reported() {
        let report = Simulation::new(
            SimConfig {
                n_words: 1,
                faults: crate::faults::FaultPlan::new().crash_at_cycle(1, 0),
                ..Default::default()
            },
            UniformModel::new(1, 3),
        )
        .run(2, |p| {
            move |mut port: SimPort| {
                for _ in 0..10 {
                    let v = port.read(0);
                    port.write(0, v + 1);
                }
                assert_ne!(p, 1, "processor 1 must have been crashed by the plan");
            }
        });
        assert_eq!(report.crashed, vec![1]);
        assert_eq!(report.memory[0], 10, "survivor finished its work");
        assert!(report.violation.is_none());
    }

    #[test]
    fn slow_by_fault_stretches_op_durations() {
        let run = |factor: u64| {
            let faults = if factor > 1 {
                crate::faults::FaultPlan::new().with(crate::faults::Fault {
                    proc: 0,
                    trigger: crate::faults::Trigger::Cycle { at: 0 },
                    kind: crate::faults::FaultKind::SlowBy { factor },
                })
            } else {
                crate::faults::FaultPlan::new()
            };
            Simulation::new(SimConfig { n_words: 1, faults, ..Default::default() }, UniformModel::new(1, 5))
                .run(1, |_| {
                    |mut port: SimPort| {
                        for _ in 0..10 {
                            let _ = port.read(0);
                        }
                    }
                })
                .cycles
        };
        let normal = run(1);
        let slowed = run(4);
        assert_eq!(slowed, normal * 4, "SlowBy must scale every op's duration");
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn workload_panic_propagates() {
        let _ = Simulation::new(SimConfig::with_words(1), UniformModel::new(1, 1)).run(2, |p| {
            move |mut port: SimPort| {
                let _ = port.read(0);
                if p == 0 {
                    panic!("boom");
                }
                // The sibling must not deadlock waiting forever.
                for _ in 0..5 {
                    let _ = port.read(0);
                }
            }
        });
    }

    #[test]
    fn delay_advances_only_local_time() {
        let report = Simulation::new(SimConfig::with_words(1), UniformModel::new(1, 2)).run(2, |p| {
            move |mut port: SimPort| {
                if p == 0 {
                    port.delay(1000);
                    assert_eq!(port.now(), 1000);
                    port.write(0, 1); // completes ~1002
                } else {
                    port.write(0, 2); // completes ~2, long before proc 0
                }
            }
        });
        assert_eq!(report.memory[0], 1, "slow processor's write must land last");
        assert!(report.cycles >= 1000);
    }

    #[test]
    fn parked_processor_takes_zero_scheduler_steps_until_notified() {
        let report = Simulation::new(
            SimConfig { n_words: 2, trace_limit: 1000, ..Default::default() },
            UniformModel::new(1, 5),
        )
        .run(2, |p| {
            move |mut port: SimPort| {
                if p == 0 {
                    let v = port.read(0);
                    port.wait_on(&[(0, v)], u64::MAX);
                    assert_eq!(port.read(0), 9, "woken only after the write landed");
                } else {
                    for _ in 0..20 {
                        let _ = port.read(1);
                    }
                    port.write(0, 9);
                    port.notify(0);
                }
            }
        });
        assert!(report.violation.is_none(), "{:?}", report.violation);
        // While parked, P0 must appear in the trace exactly as park → wake
        // with nothing of its own in between: zero scheduler steps consumed.
        let p0: Vec<&crate::trace::TraceKind> = report
            .trace
            .iter()
            .filter(|e| e.proc == 0)
            .map(|e| &e.kind)
            .collect();
        let park = p0
            .iter()
            .position(|k| matches!(k, crate::trace::TraceKind::Park(_)))
            .expect("P0 parked");
        assert!(
            matches!(p0[park + 1], crate::trace::TraceKind::Wake(0)),
            "nothing between park and wake, got {:?}",
            p0[park + 1]
        );
        // The wakeup cannot precede the notifying install's completion.
        let write_t = report
            .trace
            .iter()
            .filter(|e| e.proc == 1 && matches!(e.kind, crate::trace::TraceKind::Mem(OpKind::Write, 0)))
            .map(|e| e.time)
            .max()
            .unwrap();
        let wake_t = report
            .trace
            .iter()
            .find(|e| matches!(e.kind, crate::trace::TraceKind::Wake(_)))
            .map(|e| e.time)
            .unwrap();
        assert!(wake_t >= write_t, "wake {wake_t} before install {write_t}");
    }

    #[test]
    fn wait_on_declines_to_park_when_a_watch_already_moved() {
        // Register-then-revalidate, sim flavor: the recheck happens under
        // the engine lock, so a write that already landed is never slept
        // through (the run would otherwise deadlock — nobody notifies again).
        let report = Simulation::new(SimConfig::with_words(1), UniformModel::new(1, 3)).run(1, |_| {
            |mut port: SimPort| {
                port.write(0, 5);
                port.wait_on(&[(0, 4)], u64::MAX); // watch is stale: returns
                assert_eq!(port.read(0), 5);
            }
        });
        assert!(report.violation.is_none());
    }

    #[test]
    fn all_live_processors_parked_is_a_structured_deadlock() {
        let report = Simulation::new(SimConfig::with_words(1), UniformModel::new(1, 3)).run(2, |_| {
            move |mut port: SimPort| {
                let v = port.read(0);
                port.wait_on(&[(0, v)], u64::MAX); // nobody will ever write
                unreachable!("the engine halts parked processors structurally");
            }
        });
        match report.violation {
            Some(Violation::RetryDeadlock { ref parked, .. }) => {
                assert_eq!(parked, &[0, 1]);
            }
            ref other => panic!("expected retry deadlock, got {other:?}"),
        }
    }

    #[test]
    fn crash_fault_while_a_sibling_is_parked_is_reported_not_hung() {
        // P0 parks; P1 is scripted to crash before it ever writes. The run
        // must end with a structured deadlock (P0 alone parked), not hang.
        let report = Simulation::new(
            SimConfig {
                n_words: 1,
                faults: crate::faults::FaultPlan::new().crash_at_cycle(1, 2),
                ..Default::default()
            },
            UniformModel::new(1, 3),
        )
        .run(2, |p| {
            move |mut port: SimPort| {
                if p == 0 {
                    let v = port.read(0);
                    port.wait_on(&[(0, v)], u64::MAX);
                } else {
                    for _ in 0..10 {
                        let _ = port.read(0);
                    }
                    port.write(0, 1);
                    port.notify(0);
                }
            }
        });
        assert_eq!(report.crashed, vec![1]);
        assert!(
            matches!(report.violation, Some(Violation::RetryDeadlock { ref parked, .. }) if parked == &[0]),
            "{:?}",
            report.violation
        );
    }

    #[test]
    #[should_panic(expected = "out of simulated memory")]
    fn out_of_bounds_access_panics() {
        let _ = Simulation::new(SimConfig::with_words(1), UniformModel::new(1, 1)).run(1, |_| {
            |mut port: SimPort| {
                let _ = port.read(5);
            }
        });
    }
}
