//! Chrome-trace-event (Perfetto-compatible) export of engine traces.
//!
//! A traced [`SimReport`] can be turned into the JSON Trace Event Format
//! understood by `ui.perfetto.dev` and `chrome://tracing`: one track (thread)
//! per simulated processor, a span per transaction attempt, and instants for
//! protocol steps and scripted faults. Virtual cycles map 1:1 to trace
//! microseconds (the `ts`/`dur` unit of the format), so the Perfetto
//! timeline reads directly in cycles.
//!
//! ```
//! use stm_core::stm::StmConfig;
//! use stm_sim::engine::SimPort;
//! use stm_sim::perfetto::chrome_trace_json;
//! use stm_sim::{BusModel, StmSim};
//!
//! let sim = StmSim::new(2, 1, 1, StmConfig::default()).trace(10_000);
//! let report = sim.run(BusModel::for_procs(2), |_p, ops| {
//!     move |mut port: SimPort| {
//!         for _ in 0..3 {
//!             ops.fetch_add(&mut port, 0, 1);
//!         }
//!     }
//! });
//! let json = chrome_trace_json(&report);
//! assert!(json.contains("traceEvents"));
//! ```

use std::io::Write as _;
use std::path::Path;

use stm_core::attribution::Attribution;
use stm_core::step::StepPoint;

use crate::engine::SimReport;
use crate::trace::TraceKind;

/// The Perfetto process id under which all processor tracks are grouped.
const PID: u64 = 0;

/// Flight-recorder aggregate attached to an exported trace: drained event
/// and drop totals plus the folded [`Attribution`] blame table. Surfaced in
/// the trace's `otherData` alongside the engine's own `trace_dropped`, so a
/// post-mortem carries both truncation accountings and the blame summary.
#[derive(Debug, Clone, Default)]
pub struct FlightDump {
    /// Flight-recorder events drained across all procs.
    pub events: u64,
    /// Flight-recorder events lost to ring overwrite.
    pub dropped: u64,
    /// Conflict blame folded from the drained events.
    pub attribution: Attribution,
}

/// Build the Chrome-trace-event JSON document for `report` as a
/// [`serde_json::Value`] tree.
///
/// Layout: a top-level object with `traceEvents` (metadata naming the
/// process and one thread per processor; an `"X"` complete span per
/// transaction attempt, named by its outcome; an `"i"` instant per protocol
/// step and per fault delivery) plus an `otherData` summary (cycles, commit
/// and abort totals, dropped-event count).
pub fn chrome_trace(report: &SimReport) -> serde_json::Value {
    chrome_trace_with(report, None)
}

/// [`chrome_trace`] with an optional flight-recorder aggregate folded into
/// `otherData`: `flight_events` / `flight_dropped` totals, attributed
/// abort/help/cycles-lost counters, and the top hot cells by blame.
pub fn chrome_trace_with(report: &SimReport, flight: Option<&FlightDump>) -> serde_json::Value {
    let n_procs = report.stats.n_procs();
    let mut events: Vec<serde_json::Value> = Vec::new();

    events.push(meta("process_name", PID, None, "stm-sim"));
    for p in 0..n_procs {
        events.push(meta("thread_name", PID, Some(p as u64), &format!("P{p}")));
    }

    // Attempt spans: each processor's TxPublished opens an attempt, closed
    // by that processor's next TxPublished (retry) or its last traced event.
    // The span is named by the Decided announcement observed within it
    // (helpers may decide for the owner, so "tx attempt" — undecided within
    // this track — is a legitimate outcome, not a bug).
    let mut sorted: Vec<&crate::trace::TraceEvent> = report.trace.iter().collect();
    sorted.sort_by_key(|e| e.time);
    let mut open: Vec<Option<(u64, &'static str)>> = vec![None; n_procs];
    let mut last_t: Vec<u64> = vec![0; n_procs];
    let mut spans: Vec<serde_json::Value> = Vec::new();
    let mut close = |open: &mut Option<(u64, &'static str)>, p: usize, end: u64| {
        if let Some((start, name)) = open.take() {
            spans.push(span(name, p as u64, start, end.saturating_sub(start)));
        }
    };
    for e in &sorted {
        if e.proc >= n_procs {
            continue;
        }
        last_t[e.proc] = last_t[e.proc].max(e.time);
        match e.kind {
            TraceKind::Step(StepPoint::TxPublished) => {
                close(&mut open[e.proc], e.proc, e.time);
                open[e.proc] = Some((e.time, "tx attempt"));
            }
            TraceKind::Step(StepPoint::Decided { committed }) => {
                if let Some((_, name)) = open[e.proc].as_mut() {
                    *name = if committed { "tx commit" } else { "tx conflict" };
                }
            }
            _ => {}
        }
    }
    for p in 0..n_procs {
        close(&mut open[p], p, last_t[p]);
    }
    events.extend(spans);

    // Instants: every protocol step (category "step") and fault (category
    // "fault"), visible as ticks on the processor tracks.
    for e in &sorted {
        let (name, cat) = match e.kind {
            TraceKind::Step(p) => (format!("{p}"), "step"),
            TraceKind::Park(n) => (format!("park ({n} watches)"), "park"),
            TraceKind::Wake(addr) => (format!("wake @{addr}"), "park"),
            TraceKind::FaultCrash => ("crash".to_owned(), "fault"),
            TraceKind::FaultStall(c) => (format!("stall {c}"), "fault"),
            TraceKind::FaultSlow(f) => (format!("slow x{f}"), "fault"),
            TraceKind::Mem(..) | TraceKind::Delay(_) => continue,
        };
        events.push(instant(&name, cat, e.proc as u64, e.time));
    }

    let mut other: Vec<(String, serde_json::Value)> = vec![
        ("source".into(), "stm-sim".into()),
        ("cycles".into(), report.cycles.into()),
        ("commits".into(), report.stats.commits().into()),
        ("aborts".into(), report.stats.aborts().into()),
        ("helps".into(), report.stats.helps().into()),
        ("trace_dropped".into(), report.trace_dropped.into()),
    ];
    if let Some(fl) = flight {
        other.push(("flight_events".into(), fl.events.into()));
        other.push(("flight_dropped".into(), fl.dropped.into()));
        other.push(("attributed_aborts".into(), fl.attribution.aborts().into()));
        other.push(("attributed_helps".into(), fl.attribution.helps().into()));
        other.push(("attributed_cycles_lost".into(), fl.attribution.cycles_lost().into()));
        let hot: Vec<serde_json::Value> = fl
            .attribution
            .top_cells(8)
            .into_iter()
            .map(|(cell, blame)| {
                serde_json::Value::Object(vec![
                    ("cell".into(), cell.into()),
                    ("aborts".into(), blame.aborts.into()),
                    ("helps".into(), blame.helps.into()),
                    ("cycles_lost".into(), blame.cycles_lost.into()),
                ])
            })
            .collect();
        other.push(("hot_cells".into(), serde_json::Value::Array(hot)));
    }
    serde_json::Value::Object(vec![
        ("traceEvents".into(), serde_json::Value::Array(events)),
        ("displayTimeUnit".into(), "ns".into()),
        ("otherData".into(), serde_json::Value::Object(other)),
    ])
}

/// [`chrome_trace`] rendered as a compact JSON string.
pub fn chrome_trace_json(report: &SimReport) -> String {
    serde_json::to_string(&chrome_trace(report)).expect("trace values are finite")
}

/// [`chrome_trace_with`] rendered as a compact JSON string.
pub fn chrome_trace_json_with(report: &SimReport, flight: Option<&FlightDump>) -> String {
    serde_json::to_string(&chrome_trace_with(report, flight)).expect("trace values are finite")
}

/// Write the Chrome-trace JSON for `report` to `path` (openable at
/// `ui.perfetto.dev`).
///
/// # Errors
///
/// Propagates filesystem errors from creating or writing the file.
pub fn write_chrome_trace(path: &Path, report: &SimReport) -> std::io::Result<()> {
    write_chrome_trace_with(path, report, None)
}

/// [`write_chrome_trace`] with a flight-recorder aggregate in `otherData`.
///
/// # Errors
///
/// Propagates filesystem errors from creating or writing the file.
pub fn write_chrome_trace_with(
    path: &Path,
    report: &SimReport,
    flight: Option<&FlightDump>,
) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut f = std::fs::File::create(path)?;
    f.write_all(chrome_trace_json_with(report, flight).as_bytes())
}

fn meta(name: &str, pid: u64, tid: Option<u64>, value: &str) -> serde_json::Value {
    let mut m: Vec<(String, serde_json::Value)> = vec![
        ("name".into(), name.into()),
        ("ph".into(), "M".into()),
        ("pid".into(), pid.into()),
    ];
    if let Some(tid) = tid {
        m.push(("tid".into(), tid.into()));
    }
    m.push((
        "args".into(),
        serde_json::Value::Object(vec![("name".into(), value.into())]),
    ));
    serde_json::Value::Object(m)
}

fn span(name: &str, tid: u64, ts: u64, dur: u64) -> serde_json::Value {
    serde_json::Value::Object(vec![
        ("name".into(), name.into()),
        ("cat".into(), "tx".into()),
        ("ph".into(), "X".into()),
        ("pid".into(), PID.into()),
        ("tid".into(), tid.into()),
        ("ts".into(), ts.into()),
        // Zero-duration spans are invisible in Perfetto; clamp to 1 cycle.
        ("dur".into(), dur.max(1).into()),
    ])
}

fn instant(name: &str, cat: &str, tid: u64, ts: u64) -> serde_json::Value {
    serde_json::Value::Object(vec![
        ("name".into(), name.into()),
        ("cat".into(), cat.into()),
        ("ph".into(), "i".into()),
        ("s".into(), "t".into()),
        ("pid".into(), PID.into()),
        ("tid".into(), tid.into()),
        ("ts".into(), ts.into()),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SimPort;
    use crate::{BusModel, StmSim};
    use stm_core::stm::StmConfig;

    fn contended_report() -> SimReport {
        let sim = StmSim::new(3, 2, 2, StmConfig::default()).seed(5).jitter(3).trace(100_000);
        sim.run(BusModel::for_procs(3), |_p, ops| {
            move |mut port: SimPort| {
                for _ in 0..5 {
                    ops.fetch_add_many(&mut port, &[0, 1], &[1, 1]);
                }
            }
        })
    }

    #[test]
    fn export_round_trips_and_has_expected_schema() {
        let report = contended_report();
        let json = chrome_trace_json(&report);
        let v = serde_json::from_str(&json).expect("exporter must emit valid JSON");
        let evs = v["traceEvents"].as_array().expect("traceEvents array");
        // Metadata names the process and all three threads.
        let metas: Vec<&serde_json::Value> =
            evs.iter().filter(|e| e["ph"].as_str() == Some("M")).collect();
        assert_eq!(metas.len(), 1 + 3);
        assert_eq!(metas[0]["args"]["name"].as_str(), Some("stm-sim"));
        // Every commit decision shows up as a "tx commit" span; 2 procs x 5
        // committed transactions each.
        let commit_spans = evs
            .iter()
            .filter(|e| e["ph"].as_str() == Some("X") && e["name"].as_str() == Some("tx commit"))
            .count();
        assert_eq!(commit_spans as u64, report.stats.commits());
        // Spans are well-formed: positive duration, tid in range, ts bounded.
        for e in evs.iter().filter(|e| e["ph"].as_str() == Some("X")) {
            assert!(e["dur"].as_u64().unwrap() >= 1);
            assert!(e["tid"].as_u64().unwrap() < 3);
            assert!(e["ts"].as_u64().unwrap() <= report.cycles);
        }
        // Step instants exist and carry the "step" category.
        assert!(evs
            .iter()
            .any(|e| e["ph"].as_str() == Some("i") && e["cat"].as_str() == Some("step")));
        // The summary block mirrors the report.
        assert_eq!(v["otherData"]["cycles"].as_u64(), Some(report.cycles));
        assert_eq!(v["otherData"]["trace_dropped"].as_u64(), Some(0));
    }

    #[test]
    fn fault_events_become_fault_instants() {
        use crate::FaultPlan;
        use stm_core::step::StepKind;
        let plan = FaultPlan::new().crash_at_step(0, StepKind::Acquired, Some(1));
        let sim =
            StmSim::new(3, 2, 2, StmConfig::default()).seed(1).jitter(2).trace(100_000).faults(plan);
        let report = sim.run(BusModel::for_procs(3), |p, ops| {
            move |mut port: SimPort| {
                if p == 0 {
                    ops.fetch_add_many(&mut port, &[0, 1], &[100, 100]);
                    return;
                }
                for _ in 0..5 {
                    ops.fetch_add_many(&mut port, &[0, 1], &[1, 1]);
                }
            }
        });
        assert_eq!(report.crashed, vec![0]);
        let v = serde_json::from_str(&chrome_trace_json(&report)).unwrap();
        let crashes: Vec<&serde_json::Value> = v["traceEvents"]
            .as_array()
            .unwrap()
            .iter()
            .filter(|e| e["cat"].as_str() == Some("fault"))
            .collect();
        assert_eq!(crashes.len(), 1, "one scripted crash, one fault instant");
        assert_eq!(crashes[0]["name"].as_str(), Some("crash"));
        assert_eq!(crashes[0]["tid"].as_u64(), Some(0));
    }

    #[test]
    fn flight_dump_lands_in_other_data() {
        use stm_core::flight::FlightRecorder;
        use stm_core::observe::TxObserver as _;
        let report = contended_report();
        let mut rec = FlightRecorder::new(0, 64);
        rec.attempt_begin(0, 1, 0);
        rec.conflict(0, Some(1), Some(2), 5);
        rec.aborted(0, 0, 9);
        let events = rec.drain();
        let dump = FlightDump {
            events: events.len() as u64,
            dropped: rec.dropped(),
            attribution: Attribution::from_events(&events),
        };
        let v = chrome_trace_with(&report, Some(&dump));
        assert_eq!(v["otherData"]["flight_events"].as_u64(), Some(3));
        assert_eq!(v["otherData"]["flight_dropped"].as_u64(), Some(0));
        assert_eq!(v["otherData"]["attributed_aborts"].as_u64(), Some(1));
        assert_eq!(v["otherData"]["hot_cells"][0]["cell"].as_u64(), Some(1));
        // The baseline export carries no flight keys at all.
        let plain = chrome_trace(&report);
        assert!(plain["otherData"].get("flight_events").is_none());
    }

    #[test]
    fn untraced_report_exports_metadata_only() {
        let sim = StmSim::new(1, 1, 1, StmConfig::default()); // trace disabled
        let report = sim.run(BusModel::for_procs(1), |_p, ops| {
            move |mut port: SimPort| {
                ops.fetch_add(&mut port, 0, 1);
            }
        });
        let v = serde_json::from_str(&chrome_trace_json(&report)).unwrap();
        let evs = v["traceEvents"].as_array().unwrap();
        assert!(evs.iter().all(|e| e["ph"].as_str() == Some("M")));
    }
}
