//! Scripted fault injection: crash, stall, or slow any simulated processor
//! at any protocol step.
//!
//! A [`FaultPlan`] is a list of per-processor scripted faults. Each
//! [`Fault`] names a processor, a [`Trigger`] (a named protocol step
//! announced through [`stm_core::machine::MemPort::step`], or a virtual-clock
//! deadline), and a [`FaultKind`]:
//!
//! * [`FaultKind::Crash`] — the processor dies on the spot, exactly as a
//!   workload closure returning early would: its pending protocol work is
//!   abandoned mid-flight, and the paper's helping mechanism is what must
//!   clean up after it.
//! * [`FaultKind::Stall`] — the processor freezes for a fixed number of
//!   virtual cycles, then resumes. Models preemption/page faults.
//! * [`FaultKind::SlowBy`] — every subsequent operation of the processor
//!   takes `factor`× as long. Models a straggler.
//!
//! Plans are delivered by the engine scheduler ([`crate::engine`]): step
//! triggers fire at the exact announced instruction boundary, cycle triggers
//! at the first operation issue or step announcement at or after the
//! deadline on that processor's local clock. Delivery is deterministic, so a
//! `(seed, FaultPlan)` pair fully reproduces a failing execution — which is
//! what the shrinker in [`crate::explore`] minimizes.

use std::fmt;

use stm_core::step::{StepKind, StepPoint};

/// When a scripted fault fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trigger {
    /// The `nth` (0-based) announcement by the faulted processor of a
    /// protocol step matching `kind` (and `index`, if given — the data-set
    /// position carried by the step).
    Step {
        /// Step kind to match.
        kind: StepKind,
        /// Data-set position to match (`None` matches any).
        index: Option<usize>,
        /// 0-based occurrence count: fire on the `nth` matching announcement.
        nth: u64,
    },
    /// The first fault-check point (operation issue or step announcement) at
    /// or after local virtual cycle `at`.
    Cycle {
        /// Local-clock deadline in cycles.
        at: u64,
    },
}

impl Trigger {
    fn matches_step(&self, point: StepPoint) -> bool {
        match *self {
            Trigger::Step { kind, index, .. } => {
                point.kind() == kind && (index.is_none() || point.index() == index)
            }
            Trigger::Cycle { .. } => false,
        }
    }
}

impl fmt::Display for Trigger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Trigger::Step { kind, index: Some(j), nth } => write!(f, "{kind}{{{j}}}#{nth}"),
            Trigger::Step { kind, index: None, nth } => write!(f, "{kind}#{nth}"),
            Trigger::Cycle { at } => write!(f, "cycle>={at}"),
        }
    }
}

/// What happens when a fault fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The processor dies: its workload unwinds immediately and it never
    /// takes another step. Undecided transactions it initiated stay
    /// published, and any ownerships it holds stay claimed until helpers
    /// complete the transaction.
    Crash,
    /// The processor freezes for `cycles` virtual cycles, then resumes
    /// exactly where it was.
    Stall {
        /// Freeze duration in cycles.
        cycles: u64,
    },
    /// Every subsequent memory operation and delay of the processor takes
    /// `factor`× its modeled duration.
    SlowBy {
        /// Slow-down multiplier (≥ 1).
        factor: u64,
    },
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            FaultKind::Crash => write!(f, "crash"),
            FaultKind::Stall { cycles } => write!(f, "stall({cycles})"),
            FaultKind::SlowBy { factor } => write!(f, "slow(x{factor})"),
        }
    }
}

/// One scripted fault against one processor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    /// The processor the fault targets.
    pub proc: usize,
    /// When it fires.
    pub trigger: Trigger,
    /// What it does.
    pub kind: FaultKind,
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{} {} at {}", self.proc, self.kind, self.trigger)
    }
}

/// A scripted fault plan: any number of faults across any processors.
///
/// # Examples
///
/// ```
/// use stm_core::step::StepKind;
/// use stm_sim::faults::FaultPlan;
///
/// // Processor 0 dies right after claiming its second location; processor 1
/// // freezes for 3000 cycles the first time it starts helping someone.
/// let plan = FaultPlan::new()
///     .crash_at_step(0, StepKind::Acquired, Some(1))
///     .stall_at_step(1, StepKind::HelpBegin, None, 3000);
/// assert_eq!(plan.faults.len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The scripted faults, in no particular order.
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Add an arbitrary fault.
    pub fn with(mut self, fault: Fault) -> Self {
        self.faults.push(fault);
        self
    }

    /// Crash `proc` at the first announcement of `kind` (at data-set
    /// position `index`, if given).
    pub fn crash_at_step(self, proc: usize, kind: StepKind, index: Option<usize>) -> Self {
        self.with(Fault {
            proc,
            trigger: Trigger::Step { kind, index, nth: 0 },
            kind: FaultKind::Crash,
        })
    }

    /// Crash `proc` at the first check point at or after local cycle `at`.
    pub fn crash_at_cycle(self, proc: usize, at: u64) -> Self {
        self.with(Fault { proc, trigger: Trigger::Cycle { at }, kind: FaultKind::Crash })
    }

    /// Stall `proc` for `cycles` at the first announcement of `kind`.
    pub fn stall_at_step(
        self,
        proc: usize,
        kind: StepKind,
        index: Option<usize>,
        cycles: u64,
    ) -> Self {
        self.with(Fault {
            proc,
            trigger: Trigger::Step { kind, index, nth: 0 },
            kind: FaultKind::Stall { cycles },
        })
    }

    /// Slow `proc` down by `factor`× from local cycle `at` on.
    pub fn slow_from_cycle(self, proc: usize, at: u64, factor: u64) -> Self {
        self.with(Fault { proc, trigger: Trigger::Cycle { at }, kind: FaultKind::SlowBy { factor } })
    }

    /// Whether the plan contains no faults.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.faults.is_empty() {
            return write!(f, "(no faults)");
        }
        for (i, fault) in self.faults.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{fault}")?;
        }
        Ok(())
    }
}

/// Panic payload used to unwind a processor the fault plan crashed. The
/// engine recognizes it and treats the unwinding as a *planned* death, not a
/// test failure.
#[derive(Debug, Clone, Copy)]
pub struct CrashSignal {
    /// The processor that was crashed.
    pub proc: usize,
}

/// Per-processor delivery state for one simulation run.
#[derive(Debug)]
pub(crate) struct ProcFaults {
    entries: Vec<Entry>,
}

#[derive(Debug)]
struct Entry {
    trigger: Trigger,
    kind: FaultKind,
    /// Matching step announcements seen so far.
    seen: u64,
    fired: bool,
}

impl ProcFaults {
    /// Extract the faults of `proc` from `plan`.
    pub(crate) fn for_proc(plan: &FaultPlan, proc: usize) -> Self {
        ProcFaults {
            entries: plan
                .faults
                .iter()
                .filter(|f| f.proc == proc)
                .map(|f| Entry { trigger: f.trigger, kind: f.kind, seen: 0, fired: false })
                .collect(),
        }
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Evaluate a step announcement; returns at most one fault to deliver.
    pub(crate) fn on_step(&mut self, point: StepPoint) -> Option<FaultKind> {
        let mut fire = None;
        for e in &mut self.entries {
            if e.trigger.matches_step(point) {
                e.seen += 1;
                let due = match e.trigger {
                    Trigger::Step { nth, .. } => e.seen > nth,
                    Trigger::Cycle { .. } => false,
                };
                if due && !e.fired && fire.is_none() {
                    e.fired = true;
                    fire = Some(e.kind);
                }
            }
        }
        fire
    }

    /// Evaluate a cycle check point at local time `now`; returns at most one
    /// fault to deliver.
    pub(crate) fn on_cycle(&mut self, now: u64) -> Option<FaultKind> {
        for e in &mut self.entries {
            if e.fired {
                continue;
            }
            if let Trigger::Cycle { at } = e.trigger {
                if now >= at {
                    e.fired = true;
                    return Some(e.kind);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_trigger_counts_occurrences() {
        let plan = FaultPlan::new().with(Fault {
            proc: 0,
            trigger: Trigger::Step { kind: StepKind::AcquireAttempt, index: Some(1), nth: 1 },
            kind: FaultKind::Crash,
        });
        let mut pf = ProcFaults::for_proc(&plan, 0);
        // Wrong index: no match.
        assert_eq!(pf.on_step(StepPoint::AcquireAttempt { j: 0 }), None);
        // First matching occurrence: nth=1 means fire on the second.
        assert_eq!(pf.on_step(StepPoint::AcquireAttempt { j: 1 }), None);
        assert_eq!(pf.on_step(StepPoint::AcquireAttempt { j: 1 }), Some(FaultKind::Crash));
        // Fired faults never fire again.
        assert_eq!(pf.on_step(StepPoint::AcquireAttempt { j: 1 }), None);
    }

    #[test]
    fn cycle_trigger_fires_at_deadline_once() {
        let plan = FaultPlan::new().slow_from_cycle(2, 100, 4);
        let mut pf = ProcFaults::for_proc(&plan, 2);
        assert!(ProcFaults::for_proc(&plan, 0).is_empty());
        assert_eq!(pf.on_cycle(99), None);
        assert_eq!(pf.on_cycle(100), Some(FaultKind::SlowBy { factor: 4 }));
        assert_eq!(pf.on_cycle(101), None);
    }

    #[test]
    fn index_none_matches_any_position() {
        let plan = FaultPlan::new().crash_at_step(0, StepKind::Acquired, None);
        let mut pf = ProcFaults::for_proc(&plan, 0);
        assert_eq!(pf.on_step(StepPoint::Acquired { j: 7 }), Some(FaultKind::Crash));
    }

    #[test]
    fn display_is_readable() {
        let plan = FaultPlan::new()
            .crash_at_step(0, StepKind::BeforeDecisionCas, None)
            .stall_at_step(1, StepKind::UpdateWrite, Some(2), 500)
            .slow_from_cycle(3, 1000, 2);
        let s = plan.to_string();
        assert!(s.contains("P0 crash at BeforeDecisionCas#0"), "{s}");
        assert!(s.contains("P1 stall(500) at UpdateWrite{2}#0"), "{s}");
        assert!(s.contains("P3 slow(x2) at cycle>=1000"), "{s}");
        assert_eq!(FaultPlan::new().to_string(), "(no faults)");
    }
}
