//! A contention-free uniform-latency model, for engine tests and as the
//! "ideal machine" control in ablations.

use stm_core::word::Addr;

use super::{CostModel, OpKind};

/// Every operation costs `local + mem` cycles; no contention, no caching.
#[derive(Debug, Clone, Copy)]
pub struct UniformModel {
    local: u64,
    mem: u64,
}

impl UniformModel {
    /// `local` cycles of instruction overhead plus `mem` cycles of memory
    /// latency per operation.
    pub fn new(local: u64, mem: u64) -> Self {
        UniformModel { local, mem }
    }
}

impl CostModel for UniformModel {
    fn access(&mut self, t: u64, _proc: usize, _kind: OpKind, _addr: Addr) -> u64 {
        t + (self.local + self.mem).max(1)
    }

    fn name(&self) -> &'static str {
        "uniform"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_is_constant() {
        let mut m = UniformModel::new(2, 8);
        assert_eq!(m.access(0, 0, OpKind::Read, 0), 10);
        assert_eq!(m.access(100, 3, OpKind::Cas, 9), 110);
    }

    #[test]
    fn zero_costs_still_advance() {
        let mut m = UniformModel::new(0, 0);
        assert_eq!(m.access(5, 0, OpKind::Read, 0), 6);
    }
}
