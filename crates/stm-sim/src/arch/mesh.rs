//! Alewife-like distributed-shared-memory mesh model.
//!
//! Processors sit on a `side × side` mesh; every address has a home node
//! (round-robin interleaved, as Alewife distributed memory across nodes).
//! An access travels to the home node (per-hop latency), queues for the home
//! memory module (per-node service occupancy — this is where hot spots
//! form), and travels back. Accesses to a processor's own home node skip the
//! network but still queue for the module.
//!
//! There is no coherent caching of remote words in this model: the paper's
//! DSM results are dominated by remote latency and hot-spot queueing, which
//! this reproduces; see DESIGN.md §5.

use stm_core::layout::ShardGeometry;
use stm_core::word::Addr;

use super::{CostModel, OpKind};

/// A mesh DSM machine.
#[derive(Debug, Clone)]
pub struct MeshModel {
    side: usize,
    n_nodes: usize,
    /// Local instruction cost.
    local_cost: u64,
    /// Per-hop network latency (one direction).
    hop_cost: u64,
    /// Memory-module service time (occupies the home node).
    mem_cost: u64,
    /// Per-node module busy-until.
    node_free: Vec<u64>,
    remote_accesses: u64,
    /// Optional sharded-arena geometry: segment words home at
    /// `shard % n_nodes` instead of round-robin, so a whole shard lives on
    /// one node and cross-shard traffic pays the network distance between
    /// shard homes. `None` keeps the classic interleaving bit-identical.
    shard: Option<ShardGeometry>,
}

impl MeshModel {
    /// Paper-scale defaults: 1-cycle local, 2 cycles/hop, 6-cycle memory
    /// service, square mesh just large enough for `n_procs`.
    pub fn for_procs(n_procs: usize) -> Self {
        Self::new(n_procs, 1, 2, 6)
    }

    /// Custom costs; the mesh side is `ceil(sqrt(n_procs))`.
    ///
    /// # Panics
    ///
    /// Panics if `n_procs` is 0.
    pub fn new(n_procs: usize, local_cost: u64, hop_cost: u64, mem_cost: u64) -> Self {
        assert!(n_procs > 0, "need at least one processor");
        let side = (n_procs as f64).sqrt().ceil() as usize;
        let n_nodes = side * side;
        MeshModel {
            side,
            n_nodes,
            local_cost,
            hop_cost,
            mem_cost,
            node_free: vec![0; n_nodes],
            remote_accesses: 0,
            shard: None,
        }
    }

    /// Home the sharded arena's segment words by shard
    /// (`shard % n_nodes`): every word of a shard — cells and ownership
    /// words alike — is served by one node, so home-shard traffic stays
    /// near the owning processor and cross-shard traffic pays real network
    /// distance plus the foreign node's queue. Record words and non-arena
    /// addresses keep the classic round-robin interleaving.
    #[must_use]
    pub fn with_shard_geometry(mut self, geom: ShardGeometry) -> Self {
        self.shard = Some(geom);
        self
    }

    /// Home node of an address (round-robin interleaving; shard-homed for
    /// arena segment words when a [`ShardGeometry`] is attached).
    pub fn home(&self, addr: Addr) -> usize {
        if let Some(geom) = &self.shard {
            if let Some(shard) = geom.shard_of(addr) {
                return shard % self.n_nodes;
            }
        }
        addr % self.n_nodes
    }

    /// Manhattan distance between a processor's node and a home node.
    pub fn distance(&self, proc: usize, home: usize) -> u64 {
        let (pr, pc) = (proc / self.side, proc % self.side);
        let (hr, hc) = (home / self.side, home % self.side);
        (pr.abs_diff(hr) + pc.abs_diff(hc)) as u64
    }

    /// Count of accesses that crossed the network so far.
    pub fn remote_accesses(&self) -> u64 {
        self.remote_accesses
    }
}

impl CostModel for MeshModel {
    fn access(&mut self, t: u64, proc: usize, _kind: OpKind, addr: Addr) -> u64 {
        let home = self.home(addr);
        let dist = self.distance(proc % self.n_nodes, home);
        if dist > 0 {
            self.remote_accesses += 1;
        }
        let arrive = t + self.local_cost + dist * self.hop_cost;
        let start = arrive.max(self.node_free[home]);
        let served = start + self.mem_cost;
        self.node_free[home] = served;
        served + dist * self.hop_cost
    }

    fn name(&self) -> &'static str {
        "mesh"
    }
}

/// Mesh DSM with coherent read caching (closer to Alewife's LimitLESS
/// directory protocol): reads hit locally once a processor holds a copy;
/// writes/CASes go to the home node and pay an invalidation cost per sharer.
///
/// This is the architecture ablation between the plain [`MeshModel`]
/// (no caching, every access remote) and the bus machine (full snooping).
#[derive(Debug, Clone)]
pub struct CachedMeshModel {
    mesh: MeshModel,
    /// Per-word sharer bitmap (up to 128 processors).
    sharers: std::collections::HashMap<Addr, u128>,
    /// Cost of one invalidation message.
    inval_cost: u64,
    invalidations: u64,
}

impl CachedMeshModel {
    /// Paper-scale defaults plus a 2-cycle invalidation message cost.
    pub fn for_procs(n_procs: usize) -> Self {
        assert!(n_procs <= 128, "cached mesh supports at most 128 processors");
        CachedMeshModel {
            mesh: MeshModel::for_procs(n_procs),
            sharers: std::collections::HashMap::new(),
            inval_cost: 2,
            invalidations: 0,
        }
    }

    /// Total invalidation messages sent so far.
    pub fn invalidations(&self) -> u64 {
        self.invalidations
    }

    /// Shard-home the arena's segment words on the underlying mesh (see
    /// [`MeshModel::with_shard_geometry`]).
    #[must_use]
    pub fn with_shard_geometry(mut self, geom: ShardGeometry) -> Self {
        self.mesh = self.mesh.with_shard_geometry(geom);
        self
    }
}

impl CostModel for CachedMeshModel {
    fn access(&mut self, t: u64, proc: usize, kind: OpKind, addr: Addr) -> u64 {
        let bit = 1u128 << proc;
        let entry = self.sharers.entry(addr).or_insert(0);
        match kind {
            OpKind::Read => {
                if *entry & bit != 0 {
                    t + self.mesh.local_cost // cache hit
                } else {
                    *entry |= bit;
                    self.mesh.access(t, proc, kind, addr)
                }
            }
            OpKind::Write | OpKind::Cas => {
                let others = (*entry & !bit).count_ones() as u64;
                self.invalidations += others;
                *entry = bit;
                let base = self.mesh.access(t, proc, kind, addr);
                base + others * self.inval_cost
            }
        }
    }

    fn name(&self) -> &'static str {
        "mesh-cached"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cached_mesh_read_hits_after_first_access() {
        let mut m = CachedMeshModel::for_procs(4);
        let t1 = m.access(0, 0, OpKind::Read, 3);
        let t2 = m.access(t1, 0, OpKind::Read, 3);
        assert_eq!(t2, t1 + 1, "second read is a cache hit");
    }

    #[test]
    fn cached_mesh_write_invalidates_sharers() {
        let mut m = CachedMeshModel::for_procs(4);
        let _ = m.access(0, 0, OpKind::Read, 3);
        let _ = m.access(0, 1, OpKind::Read, 3);
        let _ = m.access(0, 2, OpKind::Write, 3);
        assert_eq!(m.invalidations(), 2);
        // Reader 0 misses again after the invalidation.
        let t = m.access(1000, 0, OpKind::Read, 3);
        assert!(t > 1001, "read after invalidation is remote");
    }

    #[test]
    fn local_access_skips_network() {
        let mut m = MeshModel::new(4, 1, 5, 10); // 2x2 mesh
        let home0 = m.home(0);
        assert_eq!(m.distance(home0, home0), 0);
        let t = m.access(0, home0, OpKind::Read, 0);
        assert_eq!(t, 1 + 10); // local + service, no hops
        assert_eq!(m.remote_accesses(), 0);
    }

    #[test]
    fn remote_access_pays_round_trip() {
        let mut m = MeshModel::new(4, 1, 5, 10); // 2x2 mesh
        // address 3 homes at node 3; proc 0 is 2 hops away.
        assert_eq!(m.home(3), 3);
        assert_eq!(m.distance(0, 3), 2);
        let t = m.access(0, 0, OpKind::Read, 3);
        assert_eq!(t, 1 + 2 * 5 + 10 + 2 * 5);
        assert_eq!(m.remote_accesses(), 1);
    }

    #[test]
    fn hot_home_node_queues() {
        let mut m = MeshModel::new(4, 1, 5, 10);
        // Two processors hit address 0 (home node 0) at the same time.
        let t1 = m.access(0, 0, OpKind::Read, 0);
        let t2 = m.access(0, 1, OpKind::Read, 0);
        // proc 1 is 1 hop away: arrives at 6, but the module is busy until 11.
        assert_eq!(t1, 11);
        assert_eq!(t2, 11 + 10 + 5);
    }

    #[test]
    fn addresses_interleave_across_homes() {
        let m = MeshModel::new(16, 1, 2, 6);
        let homes: std::collections::HashSet<usize> = (0..16).map(|a| m.home(a)).collect();
        assert_eq!(homes.len(), 16, "16 consecutive addresses spread over 16 nodes");
    }

    #[test]
    fn shard_geometry_homes_segments_by_shard() {
        use stm_core::layout::StmLayout;
        // 4 shards on a 2x2 mesh: shard s homes entirely at node s.
        let layout = StmLayout::arena(0, 4, 4, 0, 4, 8, 8);
        let geom = layout.shard_geometry().unwrap();
        let m = MeshModel::new(4, 1, 2, 6).with_shard_geometry(geom);
        for idx in 0..layout.n_cells() {
            let shard = layout.shard_of(idx);
            assert_eq!(m.home(layout.cell(idx)), shard % 4);
            assert_eq!(m.home(layout.ownership(idx)), shard % 4);
        }
        // Record words keep the classic round-robin interleaving.
        assert_eq!(m.home(layout.record(0)), layout.record(0) % 4);
        // A processor on its shard's home node accesses its cells without
        // touching the network; a foreign shard costs hops.
        let mut m2 = m.clone();
        let shard0_cell = layout.cell(0); // shard 0 → node 0
        let t = m2.access(0, 0, OpKind::Read, shard0_cell);
        assert_eq!(t, 1 + 6, "home-shard access is network-free");
        let shard3_cell = layout.cell(3 * 8); // shard 3 → node 3, 2 hops from 0
        let t = m2.access(0, 0, OpKind::Read, shard3_cell);
        assert_eq!(t, 1 + 2 * 2 + 6 + 2 * 2);
    }

    #[test]
    fn mesh_side_covers_procs() {
        for n in [1, 2, 3, 4, 5, 9, 10, 16, 17, 64] {
            let m = MeshModel::for_procs(n);
            assert!(m.n_nodes >= n);
        }
    }
}
