//! Architecture cost models.
//!
//! The paper evaluated STM on two simulated machines: a cache-coherent
//! **bus-based** multiprocessor (Goodman snoopy protocol) and an
//! **Alewife-like distributed-shared-memory mesh**. A [`CostModel`] assigns
//! each memory operation a completion time on the virtual clock, updating
//! whatever contention state (bus occupancy, cache lines, home-node queues)
//! the architecture maintains.

mod bus;
mod mesh;
mod uniform;

pub use bus::BusModel;
pub use mesh::{CachedMeshModel, MeshModel};
pub use uniform::UniformModel;

use stm_core::word::Addr;

/// Kind of a shared-memory operation, as seen by the architecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// A load.
    Read,
    /// A store.
    Write,
    /// An atomic compare-and-swap (a read-modify-write bus/network
    /// transaction regardless of whether the comparison succeeds).
    Cas,
}

/// An architecture's timing model.
///
/// `access` is called once per memory operation, in global issue order (the
/// engine serializes processors), and returns the operation's completion
/// time `>= t`. Implementations update their contention state (bus
/// busy-until, cache line ownership, home-node queues) as a side effect.
pub trait CostModel: Send {
    /// Completion time of `kind` on `addr`, issued by `proc` at local time `t`.
    fn access(&mut self, t: u64, proc: usize, kind: OpKind, addr: Addr) -> u64;

    /// Short human-readable name (used in benchmark table headers).
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn models_are_monotone_in_time() {
        let mut models: Vec<Box<dyn CostModel>> = vec![
            Box::new(UniformModel::new(1, 5)),
            Box::new(BusModel::for_procs(8)),
            Box::new(MeshModel::for_procs(16)),
        ];
        for m in &mut models {
            let mut t = 0;
            for i in 0..200u64 {
                let kind = match i % 3 {
                    0 => OpKind::Read,
                    1 => OpKind::Write,
                    _ => OpKind::Cas,
                };
                let done = m.access(t, (i % 8) as usize, kind, (i % 16) as usize);
                assert!(done > t, "{}: completion must advance past issue time", m.name());
                t = done;
            }
        }
    }
}
