//! Snoopy-cache bus model (the paper's "Goodman protocol" machine).
//!
//! The two effects the paper's bus-machine results hinge on are captured:
//!
//! 1. **cache hits are local** — a processor re-reading a word it holds in
//!    its cache (and nobody invalidated) pays only the local cost, which is
//!    why test-and-test-and-set spins quietly until the lock changes hands;
//! 2. **everything else serializes on one bus** — misses, writes that need to
//!    invalidate sharers, and CASes queue on a single shared bus, which is
//!    why invalidation storms collapse throughput as processors are added.
//!
//! Coherence is a simplified MSI over word-granularity lines: a per-word
//! sharer bitmap; a write/CAS by `p` invalidates every other sharer and
//! leaves `p` the sole (modified) holder; a write hit while `p` is the sole
//! holder is local.

use std::collections::HashMap;

use stm_core::layout::ShardGeometry;
use stm_core::word::Addr;

use super::{CostModel, OpKind};

/// Per-word coherence state: which processors hold the line, and whether the
/// sole holder has it modified.
#[derive(Debug, Clone, Copy, Default)]
struct Line {
    sharers: u128,
    modified: bool,
}

/// A bus-based cache-coherent machine with up to 128 processors.
#[derive(Debug, Clone)]
pub struct BusModel {
    /// Cycles for a cache hit / local instruction.
    local_cost: u64,
    /// Cycles one bus transaction occupies the bus.
    bus_cost: u64,
    /// Time the bus is busy until.
    bus_free: u64,
    lines: HashMap<Addr, Line>,
    n_procs: usize,
    /// Bus transactions performed (for stats/diagnostics).
    bus_txns: u64,
    /// Optional sharded-arena geometry: bus transactions on a segment word
    /// outside the issuing processor's home shard occupy the bus for
    /// `cross_cost` extra cycles (longer snoop walk across the other
    /// shard's address runs). `None` leaves every schedule bit-identical
    /// to the classic model.
    shard: Option<(ShardGeometry, u64)>,
    cross_shard_txns: u64,
}

impl BusModel {
    /// Paper-scale default costs: 1-cycle cache hit, 12-cycle bus
    /// transaction.
    pub fn for_procs(n_procs: usize) -> Self {
        Self::new(n_procs, 1, 12)
    }

    /// Custom costs.
    ///
    /// # Panics
    ///
    /// Panics if `n_procs` exceeds 128 (sharer bitmap width).
    pub fn new(n_procs: usize, local_cost: u64, bus_cost: u64) -> Self {
        assert!(n_procs <= 128, "bus model supports at most 128 processors");
        BusModel {
            local_cost,
            bus_cost,
            bus_free: 0,
            lines: HashMap::new(),
            n_procs,
            bus_txns: 0,
            shard: None,
            cross_shard_txns: 0,
        }
    }

    /// Charge cross-shard traffic: bus transactions on segment words whose
    /// shard differs from the issuing processor's home shard
    /// (`proc % n_shards`) occupy the bus for `cross_cost` extra cycles.
    /// Record words and other non-arena addresses are never surcharged.
    #[must_use]
    pub fn with_shard_geometry(mut self, geom: ShardGeometry, cross_cost: u64) -> Self {
        self.shard = Some((geom, cross_cost));
        self
    }

    /// Number of bus transactions so far.
    pub fn bus_txns(&self) -> u64 {
        self.bus_txns
    }

    /// Bus transactions that crossed shards (0 without a shard geometry).
    pub fn cross_shard_txns(&self) -> u64 {
        self.cross_shard_txns
    }

    /// Extra bus occupancy for `proc` touching `addr`, when a shard
    /// geometry is attached and the address lives in a foreign shard.
    fn cross_cost_for(&self, proc: usize, addr: Addr) -> Option<u64> {
        let (geom, cost) = self.shard.as_ref()?;
        match geom.shard_of(addr) {
            Some(shard) if shard != proc % geom.n_shards => Some(*cost),
            _ => None,
        }
    }

    fn bus_transaction(&mut self, earliest: u64, cross: Option<u64>) -> u64 {
        let start = earliest.max(self.bus_free);
        let done = start + self.bus_cost + cross.unwrap_or(0);
        self.bus_free = done;
        self.bus_txns += 1;
        if cross.is_some() {
            self.cross_shard_txns += 1;
        }
        done
    }
}

impl CostModel for BusModel {
    fn access(&mut self, t: u64, proc: usize, kind: OpKind, addr: Addr) -> u64 {
        debug_assert!(proc < self.n_procs);
        let bit = 1u128 << proc;
        let ready = t + self.local_cost;
        let cross = self.cross_cost_for(proc, addr);
        let line = self.lines.entry(addr).or_default();
        match kind {
            OpKind::Read => {
                if line.sharers & bit != 0 {
                    ready // cache hit
                } else {
                    line.sharers |= bit;
                    line.modified = false;
                    self.bus_transaction(ready, cross)
                }
            }
            OpKind::Write | OpKind::Cas => {
                let sole_modified_holder = line.sharers == bit && line.modified;
                // CAS is a bus RMW even on a locally held line (it must
                // appear globally atomic on this simplified protocol).
                if sole_modified_holder && kind == OpKind::Write {
                    ready // write hit in M state
                } else {
                    line.sharers = bit;
                    line.modified = true;
                    self.bus_transaction(ready, cross)
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "bus"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_miss_then_hit() {
        let mut m = BusModel::new(4, 1, 10);
        let t1 = m.access(0, 0, OpKind::Read, 7);
        assert_eq!(t1, 11); // miss: local + bus
        let t2 = m.access(t1, 0, OpKind::Read, 7);
        assert_eq!(t2, t1 + 1); // hit: local only
        assert_eq!(m.bus_txns(), 1);
    }

    #[test]
    fn write_invalidates_other_readers() {
        let mut m = BusModel::new(4, 1, 10);
        let _ = m.access(0, 0, OpKind::Read, 3);
        let _ = m.access(0, 1, OpKind::Read, 3);
        // proc 2 writes: bus txn, invalidating 0 and 1.
        let _ = m.access(0, 2, OpKind::Write, 3);
        // both previous readers now miss again.
        let before = m.bus_txns();
        let _ = m.access(100, 0, OpKind::Read, 3);
        let _ = m.access(100, 1, OpKind::Read, 3);
        assert_eq!(m.bus_txns(), before + 2);
    }

    #[test]
    fn write_hit_in_modified_state_is_local() {
        let mut m = BusModel::new(4, 1, 10);
        let t1 = m.access(0, 0, OpKind::Write, 5); // miss
        let t2 = m.access(t1, 0, OpKind::Write, 5); // M-state hit
        assert_eq!(t2, t1 + 1);
    }

    #[test]
    fn cas_always_uses_the_bus() {
        let mut m = BusModel::new(4, 1, 10);
        let t1 = m.access(0, 0, OpKind::Cas, 5);
        let t2 = m.access(t1, 0, OpKind::Cas, 5);
        assert_eq!(m.bus_txns(), 2);
        assert!(t2 > t1 + 1);
    }

    #[test]
    fn bus_serializes_concurrent_misses() {
        let mut m = BusModel::new(8, 1, 10);
        // Two processors issue at the same local time; the second queues
        // behind the first on the bus.
        let t1 = m.access(0, 0, OpKind::Read, 1);
        let t2 = m.access(0, 1, OpKind::Read, 2);
        assert_eq!(t1, 11);
        assert_eq!(t2, 21);
    }

    #[test]
    #[should_panic(expected = "at most 128")]
    fn too_many_procs_panics() {
        let _ = BusModel::new(129, 1, 1);
    }

    #[test]
    fn cross_shard_bus_txns_pay_the_surcharge() {
        use stm_core::layout::StmLayout;
        // 2 shards, 8-cell segments: cell 0 → shard 0, cell 8 → shard 1.
        let layout = StmLayout::arena(0, 2, 4, 0, 2, 8, 4);
        let geom = layout.shard_geometry().unwrap();
        let mut plain = BusModel::new(2, 1, 10);
        let mut sharded = BusModel::new(2, 1, 10).with_shard_geometry(geom, 5);

        // Home-shard traffic and record words cost exactly the classic model.
        let own = layout.cell(0);
        assert_eq!(
            sharded.access(0, 0, OpKind::Read, own),
            plain.access(0, 0, OpKind::Read, own)
        );
        let rec = layout.record(1);
        assert_eq!(
            sharded.access(20, 0, OpKind::Cas, rec),
            plain.access(20, 0, OpKind::Cas, rec)
        );
        assert_eq!(sharded.cross_shard_txns(), 0);

        // A foreign-shard miss occupies the bus 5 cycles longer.
        let foreign = layout.cell(8);
        let t_plain = plain.access(100, 0, OpKind::Read, foreign);
        let t_cross = sharded.access(100, 0, OpKind::Read, foreign);
        assert_eq!(t_cross, t_plain + 5);
        assert_eq!(sharded.cross_shard_txns(), 1);

        // Cache hits stay local even across shards.
        let t_hit = sharded.access(t_cross, 0, OpKind::Read, foreign);
        assert_eq!(t_hit, t_cross + 1);
        assert_eq!(sharded.cross_shard_txns(), 1);
    }
}
