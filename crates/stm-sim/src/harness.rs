//! Convenience harness: an STM instance wired into a simulated machine.
//!
//! [`StmSim`] bundles the address-space plumbing: it sizes the simulated
//! memory for an [`stm_core::ops::StmOps`] instance, pre-loads cell
//! values, runs one workload closure per simulated processor, and decodes
//! results out of the final memory image. Both the figure-regeneration
//! benchmarks and the schedule-exploration tests are built on it.
//!
//! The cost models are *address-faithful*: they price the memory operations
//! the protocol actually issues, at the addresses the layout actually
//! assigns. Simulated figures meant to be compared with the paper's should
//! therefore use the default dense layout
//! ([`StmConfig`]'s `pad_shift = 0`); a padded layout
//! ([`StmConfig::host_tuned`]) remains *correct* under simulation — the
//! harness derives every address from the layout — but spreads the words
//! across more cache lines / home nodes than the paper's model assumes, so
//! its cost figures answer a different question.
//!
//! # Examples
//!
//! ```
//! use stm_core::stm::StmConfig;
//! use stm_sim::arch::BusModel;
//! use stm_sim::harness::StmSim;
//!
//! let mut sim = StmSim::new(4, 8, 4, StmConfig::default());
//! sim.init_cell(0, 100);
//! let report = sim.run(BusModel::for_procs(4), |_p, ops| {
//!     move |mut port| {
//!         for _ in 0..25 {
//!             ops.fetch_add(&mut port, 0, 1);
//!         }
//!     }
//! });
//! assert_eq!(sim.cell_value(&report, 0), 200);
//! ```

use stm_core::ops::StmOps;
use stm_core::program::ProgramTableBuilder;
use stm_core::stm::StmConfig;
use stm_core::word::{cell_value, pack_cell, CellIdx};

use crate::arch::CostModel;
use crate::engine::{SimConfig, SimPort, SimReport, Simulation};

/// An STM instance laid out in a simulated machine's memory.
#[derive(Debug, Clone)]
pub struct StmSim {
    ops: StmOps,
    n_procs: usize,
    sim_config: SimConfig,
}

impl StmSim {
    /// An STM with `n_cells` cells for `n_procs` simulated processors and
    /// the built-in programs only.
    pub fn new(n_procs: usize, n_cells: usize, max_locs: usize, config: StmConfig) -> Self {
        Self::with_programs(n_procs, n_cells, max_locs, config, |_| ()).0
    }

    /// Same, also registering application programs.
    pub fn with_programs<X>(
        n_procs: usize,
        n_cells: usize,
        max_locs: usize,
        config: StmConfig,
        extra: impl FnOnce(&mut ProgramTableBuilder) -> X,
    ) -> (Self, X) {
        let (ops, x) = StmOps::with_programs(0, n_cells, n_procs, max_locs, config, extra);
        let n_words = ops.stm().layout().words_needed();
        let sim_config = SimConfig { n_words, ..Default::default() };
        (StmSim { ops, n_procs, sim_config }, x)
    }

    /// An STM over a pre-built layout — e.g. a sharded arena
    /// ([`stm_core::layout::StmLayout::arena`]) whose cells a host-side
    /// [`stm_core::arena::CellArena`] hands out while the simulation runs.
    /// The simulated memory is sized to cover the layout's full capacity
    /// (`layout.end()` words); pair with
    /// [`crate::arch::BusModel::with_shard_geometry`] /
    /// [`crate::arch::MeshModel::with_shard_geometry`] to charge cross-shard
    /// traffic.
    pub fn with_layout(n_procs: usize, layout: stm_core::layout::StmLayout, config: StmConfig) -> Self {
        let ops = StmOps::with_layout(layout, config);
        let n_words = ops.stm().layout().end();
        let sim_config = SimConfig { n_words, ..Default::default() };
        StmSim { ops, n_procs, sim_config }
    }

    /// Set the schedule seed (default 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.sim_config.seed = seed;
        self
    }

    /// Set the per-operation completion jitter (default 0 cycles).
    pub fn jitter(mut self, jitter: u64) -> Self {
        self.sim_config.jitter = jitter;
        self
    }

    /// Set the watchdog limit.
    pub fn max_cycles(mut self, max: u64) -> Self {
        self.sim_config.max_cycles = max;
        self
    }

    /// Record up to `limit` trace events (needed by the liveness checker and
    /// the counterexample dump; default 0 = tracing off).
    pub fn trace(mut self, limit: usize) -> Self {
        self.sim_config.trace_limit = limit;
        self
    }

    /// Install a scripted fault plan (see [`crate::faults`]).
    pub fn faults(mut self, plan: crate::faults::FaultPlan) -> Self {
        self.sim_config.faults = plan;
        self
    }

    /// Attach a shared [`PriorityBoard`](stm_core::contention::PriorityBoard)
    /// so helpers consult the escalation ladder. The board is host-side
    /// (advisory atomics, no simulated-memory traffic), so attaching one
    /// leaves simulated schedules bit-identical until a manager actually
    /// raises a level.
    pub fn priority_board(mut self, board: std::sync::Arc<stm_core::contention::PriorityBoard>) -> Self {
        self.ops = self.ops.with_priority_board(board);
        self
    }

    /// Pre-seed processor `proc`'s transaction-record version counter, so a
    /// short run exercises version wraparound. The record starts idle
    /// (`Null`) at `version`; its next transaction uses `version + 1`.
    pub fn preset_status_version(&mut self, proc: usize, version: u64) {
        use stm_core::word::{pack_status, TxStatus};
        let addr = self.ops.stm().layout().status(proc);
        self.sim_config.init.retain(|&(a, _)| a != addr);
        self.sim_config.init.push((addr, pack_status(version, TxStatus::Null)));
    }

    /// Pre-load cell `idx` with `value` before the simulation starts.
    pub fn init_cell(&mut self, idx: CellIdx, value: u32) {
        let addr = self.ops.stm().layout().cell(idx);
        self.sim_config.init.retain(|&(a, _)| a != addr);
        self.sim_config.init.push((addr, pack_cell(0, value)));
    }

    /// The STM operations handle (cloneable; also passed to every body).
    pub fn ops(&self) -> &StmOps {
        &self.ops
    }

    /// Number of simulated processors.
    pub fn n_procs(&self) -> usize {
        self.n_procs
    }

    /// Run the simulation: `make_body(p, ops)` builds processor `p`'s
    /// workload.
    pub fn run<F, B>(&self, model: impl CostModel + 'static, mut make_body: F) -> SimReport
    where
        F: FnMut(usize, StmOps) -> B,
        B: FnOnce(SimPort) + Send,
    {
        let ops = self.ops.clone();
        Simulation::new(self.sim_config.clone(), model)
            .run(self.n_procs, |p| make_body(p, ops.clone()))
    }

    /// Decode a cell's final value out of a finished run's memory image.
    pub fn cell_value(&self, report: &SimReport, idx: CellIdx) -> u32 {
        cell_value(report.memory[self.ops.stm().layout().cell(idx)])
    }

    /// Final values of all cells.
    pub fn all_cells(&self, report: &SimReport) -> Vec<u32> {
        (0..self.ops.stm().layout().n_cells()).map(|i| self.cell_value(report, i)).collect()
    }

    /// Check protocol quiescence on a finished run: every ownership word is
    /// free. Returns the indices of violating cells (empty = quiescent).
    pub fn leaked_ownerships(&self, report: &SimReport) -> Vec<CellIdx> {
        let l = self.ops.stm().layout();
        (0..l.n_cells())
            .filter(|&i| report.memory[l.ownership(i)] != stm_core::word::OWNER_FREE)
            .collect()
    }

    /// Count committed transactions observed in the trace (requires
    /// [`StmSim::trace`]). Each `(owner, version)` commits at most once and
    /// the commit step is announced exactly by the participant whose decision
    /// CAS succeeded, so this is the exact commit count as long as the trace
    /// did not overflow its limit.
    pub fn commit_count(&self, report: &SimReport) -> usize {
        use stm_core::step::StepPoint;
        report
            .trace
            .iter()
            .filter(|e| {
                matches!(
                    e.kind,
                    crate::trace::TraceKind::Step(StepPoint::Decided { committed: true })
                )
            })
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::{BusModel, MeshModel, UniformModel};

    #[test]
    fn counter_on_all_architectures() {
        for arch in 0..3 {
            let sim = StmSim::new(4, 4, 4, StmConfig::default()).seed(7).jitter(2);
            let body = |_p: usize, ops: StmOps| {
                move |mut port: SimPort| {
                    for _ in 0..50 {
                        ops.fetch_add(&mut port, 1, 1);
                    }
                }
            };
            let report = match arch {
                0 => sim.run(UniformModel::new(1, 5), body),
                1 => sim.run(BusModel::for_procs(4), body),
                _ => sim.run(MeshModel::for_procs(4), body),
            };
            assert_eq!(sim.cell_value(&report, 1), 200, "arch {arch}");
            assert!(sim.leaked_ownerships(&report).is_empty(), "arch {arch}");
        }
    }

    #[test]
    fn init_cell_preloads_values() {
        let mut sim = StmSim::new(1, 4, 2, StmConfig::default());
        sim.init_cell(0, 11);
        sim.init_cell(3, 44);
        sim.init_cell(0, 12); // overrides
        let report = sim.run(UniformModel::new(1, 1), |_p, _ops| |_port: SimPort| {});
        assert_eq!(sim.all_cells(&report), vec![12, 0, 0, 44]);
    }

    #[test]
    fn multiword_transfer_conserves_sum_under_simulation() {
        let mut sim = StmSim::new(6, 8, 4, StmConfig::default()).seed(3).jitter(3);
        for c in 0..8 {
            sim.init_cell(c, 1000);
        }
        let report = sim.run(MeshModel::for_procs(6), |p, ops| {
            move |mut port: SimPort| {
                for i in 0..40 {
                    let from = (p + i) % 8;
                    let to = (p * 3 + i) % 8;
                    if from == to {
                        continue;
                    }
                    let cells = [from, to];
                    let deltas = [1u32.wrapping_neg(), 1];
                    ops.fetch_add_many(&mut port, &cells, &deltas);
                }
            }
        });
        let total: u64 = sim.all_cells(&report).iter().map(|&v| v as u64).sum();
        assert_eq!(total, 8000);
        assert!(sim.leaked_ownerships(&report).is_empty());
    }

    #[test]
    fn padded_layout_stays_correct_on_bus_and_mesh() {
        // `pad_shift` is a host optimization; the simulator must stay
        // exact under it because every address flows through the layout.
        let config = StmConfig::host_tuned();
        assert_ne!(config.pad_shift, 0, "host preset must pad");
        for mesh in [false, true] {
            let mut sim = StmSim::new(4, 4, 4, config).seed(11).jitter(3);
            sim.init_cell(2, 5);
            let body = |_p: usize, ops: StmOps| {
                move |mut port: SimPort| {
                    for _ in 0..25 {
                        ops.fetch_add(&mut port, 2, 1);
                    }
                }
            };
            let report = if mesh {
                sim.run(MeshModel::for_procs(4), body)
            } else {
                sim.run(BusModel::for_procs(4), body)
            };
            assert_eq!(sim.cell_value(&report, 2), 105, "mesh={mesh}");
            assert!(sim.leaked_ownerships(&report).is_empty(), "mesh={mesh}");
        }
    }

    #[test]
    fn crashed_processor_cannot_block_the_others() {
        // The paper's headline claim: STM is non-blocking. Processor 0
        // "crashes" by stalling forever after starting transactions; the
        // remaining processors must still complete all their increments.
        let sim = StmSim::new(3, 2, 2, StmConfig::default()).seed(5).jitter(2);
        let report = sim.run(BusModel::for_procs(3), |p, ops| {
            move |mut port: SimPort| {
                if p == 0 {
                    // Do a couple of transactions, then die.
                    ops.fetch_add(&mut port, 0, 1);
                    return;
                }
                for _ in 0..100 {
                    ops.fetch_add(&mut port, 0, 1);
                }
            }
        });
        assert_eq!(sim.cell_value(&report, 0), 201);
    }
}
