//! Property test: compiled-plan execution is *trace-equivalent* to the
//! interpreted spec path under deterministic simulation.
//!
//! The small-k MWCAS kernels (`Kernel::K1/K2/K4`) are monomorphized copies
//! of the general sweep built from the same per-cell primitives, so they
//! must issue the **identical sequence** of simulated memory operations and
//! protocol step announcements — same addresses, same order, same cycle
//! costs — as `Stm::run` does for the same workload. This pins the PR's
//! hard constraint: switching the hot paths onto compiled plans cannot
//! perturb a single simulated schedule.

use proptest::prelude::*;
use stm_core::ops::StmOps;
use stm_core::stm::{StmConfig, TxOptions, TxSpec};
use stm_core::word::Word;
use stm_sim::arch::{BusModel, MeshModel};
use stm_sim::engine::{SimPort, SimReport};
use stm_sim::harness::StmSim;

const N_PROCS: usize = 3;
const N_CELLS: usize = 6;
const TRACE_LIMIT: usize = 400_000;

/// One generated transaction: a non-empty set of distinct cells (from a
/// 6-bit mask, truncated to 4 so every kernel tier is exercised) and a
/// per-cell delta.
fn decode(mask: u8, delta: u32) -> (Vec<usize>, Vec<Word>) {
    let cells: Vec<usize> = (0..N_CELLS).filter(|c| mask & (1 << c) != 0).take(4).collect();
    let params = vec![delta as Word; cells.len()];
    (cells, params)
}

/// Run the generated workload with every processor executing the whole
/// transaction list; `planned` selects compiled-plan or interpreted
/// execution.
fn run_workload(txs: &[(u8, u32)], seed: u64, jitter: u64, mesh: bool, planned: bool) -> SimReport {
    let sim = StmSim::new(N_PROCS, N_CELLS, 8, StmConfig::default())
        .seed(seed)
        .jitter(jitter)
        .trace(TRACE_LIMIT);
    let body = |_p: usize, ops: StmOps| {
        let txs = txs.to_vec();
        move |mut port: SimPort| {
            let add = ops.builtins().add;
            for &(mask, delta) in &txs {
                let (cells, params) = decode(mask, delta);
                if planned {
                    ops.run_planned(&mut port, add, &params, &cells, |_| ());
                } else {
                    let _ = ops
                        .run(&mut port, &TxSpec::new(add, &params, &cells), &mut TxOptions::new())
                        .expect("unlimited budget cannot be exhausted");
                }
            }
        }
    };
    if mesh {
        sim.run(MeshModel::for_procs(N_PROCS), body)
    } else {
        sim.run(BusModel::for_procs(N_PROCS), body)
    }
}

fn assert_equivalent(txs: &[(u8, u32)], seed: u64, jitter: u64, mesh: bool) {
    let interpreted = run_workload(txs, seed, jitter, mesh, false);
    let planned = run_workload(txs, seed, jitter, mesh, true);
    assert_eq!(interpreted.trace_dropped, 0, "trace overflow invalidates the comparison");
    assert_eq!(planned.trace_dropped, 0, "trace overflow invalidates the comparison");
    assert_eq!(
        interpreted.cycles, planned.cycles,
        "compiled plans must not change simulated time (mesh={mesh})"
    );
    assert_eq!(
        interpreted.memory, planned.memory,
        "compiled plans must not change final memory (mesh={mesh})"
    );
    // The strongest form: every memory operation, delay, and protocol step,
    // at the same virtual time, from the same processor.
    assert_eq!(
        interpreted.trace, planned.trace,
        "compiled plans must replay the interpreted step trace exactly (mesh={mesh})"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn bus_schedules_are_bit_identical(
        txs in proptest::collection::vec((1u8..64, 1u32..100), 2..6),
        seed in 0u64..500,
        jitter in 0u64..4,
    ) {
        assert_equivalent(&txs, seed, jitter, false);
    }

    #[test]
    fn mesh_schedules_are_bit_identical(
        txs in proptest::collection::vec((1u8..64, 1u32..100), 2..6),
        seed in 0u64..500,
        jitter in 0u64..4,
    ) {
        assert_equivalent(&txs, seed, jitter, true);
    }
}

#[test]
fn kernel_ladder_is_bit_identical_on_both_models() {
    // Deterministic witness per kernel tier: k = 1 (K1), 2 (K2), 3
    // (general), 4 (K4) — one mask each, under contention from all
    // processors running the same list.
    let txs = [(0b000001u8, 3u32), (0b000101, 5), (0b101001, 7), (0b101101, 11)];
    for mesh in [false, true] {
        assert_equivalent(&txs, 42, 2, mesh);
    }
}

#[test]
fn final_values_match_the_workload_sum() {
    // Cross-check the harness itself: the planned run's committed deltas
    // add up exactly (every proc applies every tx once).
    let txs = [(0b000011u8, 2u32), (0b110000, 9)];
    let report = run_workload(&txs, 7, 1, false, true);
    let mut expected = vec![0u32; N_CELLS];
    for &(mask, delta) in &txs {
        let (cells, _) = decode(mask, delta);
        for c in cells {
            expected[c] += delta * N_PROCS as u32;
        }
    }
    // A same-shape harness decodes the final memory (layouts are identical).
    let sim = StmSim::new(N_PROCS, N_CELLS, 8, StmConfig::default());
    assert_eq!(sim.all_cells(&report), expected);
}
