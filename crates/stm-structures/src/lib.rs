//! # stm-structures — the benchmark data structures of the evaluation
//!
//! Each workload of the Shavit–Touitou evaluation is implemented here over
//! **every** synchronization method the paper compares, behind one API per
//! structure, generic over [`MemPort`](stm_core::machine::MemPort) (so each
//! runs both on the host and on the simulated machines):
//!
//! * [`counter`] — the counting benchmark (shared fetch-and-increment);
//! * [`queue`] — the FIFO queue (ring representation; enqueue one end,
//!   dequeue the other);
//! * [`deque`] — the paper's doubly-linked queue in its literal linked-node
//!   form, with pushes/pops at both ends;
//! * [`list_set`] — a sorted linked-list set (STM only): the general
//!   search-structure case of the static-transaction technique;
//! * [`resource`] — the resource-allocation benchmark (atomically acquire /
//!   release k of M resources);
//! * [`prio`] — a fixed-capacity array priority queue (insert /
//!   extract-min as whole-heap transactions);
//! * [`blocking`] — blocking forms (STM only) built on the dynamic layer's
//!   `retry` / `or_else` composition: a [`blocking::BoundedQueue`] whose
//!   operations park instead of spin, a [`blocking::Semaphore`], and a
//!   [`blocking::BlockingPool`] with atomic blocking multi-acquire.
//!
//! Methods are selected with [`Method`]:
//!
//! * `Stm` — the paper's transactional memory (optionally without helping,
//!   for the ablation);
//! * `Herlihy` — Herlihy's non-blocking whole-object translation;
//! * `Ttas` / `Mcs` — blocking lock baselines.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod blocking;
pub mod counter;
pub mod deque;
pub mod hashmap;
pub mod list_set;
pub mod prio;
pub mod queue;
pub mod resource;

/// The synchronization method a structure instance is built on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// Shavit–Touitou STM (with non-redundant helping, the paper's default).
    Stm,
    /// STM with helping disabled — the A1 ablation (no lock-freedom
    /// guarantee; retries rely on back-off).
    StmNoHelp,
    /// Herlihy's non-blocking small-object translation.
    Herlihy,
    /// Test-and-test-and-set lock with exponential back-off.
    Ttas,
    /// MCS queue lock.
    Mcs,
}

impl Method {
    /// All methods, paper methods first.
    pub const ALL: [Method; 5] =
        [Method::Stm, Method::Herlihy, Method::Ttas, Method::Mcs, Method::StmNoHelp];

    /// The four methods the paper's figures plot.
    pub const PAPER: [Method; 4] = [Method::Stm, Method::Herlihy, Method::Ttas, Method::Mcs];

    /// Short label used in benchmark tables.
    pub fn label(self) -> &'static str {
        match self {
            Method::Stm => "STM",
            Method::StmNoHelp => "STM-nohelp",
            Method::Herlihy => "Herlihy",
            Method::Ttas => "TTAS-lock",
            Method::Mcs => "MCS-lock",
        }
    }

    /// Whether the method is non-blocking.
    pub fn non_blocking(self) -> bool {
        matches!(self, Method::Stm | Method::StmNoHelp | Method::Herlihy)
    }

    /// The STM configuration this method implies (where applicable).
    pub(crate) fn stm_config(self) -> stm_core::stm::StmConfig {
        match self {
            Method::StmNoHelp => stm_core::stm::StmConfig {
                helping: false,
                backoff: stm_core::stm::BackoffPolicy::Exponential { base: 8, max: 4096 },
                ..Default::default()
            },
            _ => stm_core::stm::StmConfig::default(),
        }
    }
}

impl std::fmt::Display for Method {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<_> = Method::ALL.iter().map(|m| m.label()).collect();
        assert_eq!(labels.len(), Method::ALL.len());
    }

    #[test]
    fn blocking_classification() {
        assert!(Method::Stm.non_blocking());
        assert!(Method::Herlihy.non_blocking());
        assert!(!Method::Ttas.non_blocking());
        assert!(!Method::Mcs.non_blocking());
    }

    #[test]
    fn nohelp_config_disables_helping() {
        assert!(!Method::StmNoHelp.stm_config().helping);
        assert!(Method::Stm.stm_config().helping);
    }
}
