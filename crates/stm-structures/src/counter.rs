//! The counting benchmark: a shared fetch-and-increment counter.
//!
//! This is the paper's first benchmark — the highest-contention workload
//! possible (every operation touches the same word), which is where the
//! differences between the methods are starkest.

use stm_core::machine::MemPort;
use stm_core::ops::StmOps;
use stm_core::word::{pack_cell, Addr, Word};
use stm_sync::{HerlihyHandle, HerlihyObject, McsLock, TtasLock};

use crate::Method;

/// A shared counter built on a chosen [`Method`].
#[derive(Debug, Clone)]
pub struct Counter {
    inner: Inner,
}

#[derive(Debug, Clone)]
enum Inner {
    Stm { ops: StmOps },
    Herlihy { obj: HerlihyObject },
    Ttas { lock: TtasLock, data: Addr },
    Mcs { lock: McsLock, data: Addr },
}

/// A processor-local handle to a [`Counter`].
#[derive(Debug)]
pub struct CounterHandle {
    inner: HandleInner,
}

#[derive(Debug)]
enum HandleInner {
    Stm { ops: StmOps },
    Herlihy { h: HerlihyHandle },
    Ttas { lock: TtasLock, data: Addr },
    Mcs { lock: McsLock, data: Addr },
}

impl Counter {
    /// Shared words a counter occupies for `method` and `n_procs`.
    pub fn words_needed(method: Method, n_procs: usize) -> usize {
        match method {
            Method::Stm | Method::StmNoHelp => {
                StmOps::new(0, 1, n_procs, 1, Method::Stm.stm_config())
                    .stm()
                    .layout()
                    .words_needed()
            }
            Method::Herlihy => HerlihyObject::words_needed(1, n_procs),
            Method::Ttas => TtasLock::words_needed() + 1,
            Method::Mcs => McsLock::words_needed(n_procs) + 1,
        }
    }

    /// Build a counter at `base` for `n_procs` processors.
    pub fn new(method: Method, base: Addr, n_procs: usize) -> Self {
        let inner = match method {
            Method::Stm | Method::StmNoHelp => {
                Inner::Stm { ops: StmOps::new(base, 1, n_procs, 1, method.stm_config()) }
            }
            Method::Herlihy => Inner::Herlihy { obj: HerlihyObject::new(base, 1, n_procs) },
            Method::Ttas => Inner::Ttas { lock: TtasLock::new(base), data: base + 1 },
            Method::Mcs => Inner::Mcs {
                lock: McsLock::new(base, n_procs),
                data: base + McsLock::words_needed(n_procs),
            },
        };
        Counter { inner }
    }

    /// `(address, word)` pairs pre-loading the counter to `initial`.
    pub fn init_words(&self, initial: u32) -> Vec<(Addr, Word)> {
        match &self.inner {
            Inner::Stm { ops } => {
                vec![(ops.stm().layout().cell(0), pack_cell(0, initial))]
            }
            Inner::Herlihy { obj } => obj.initial_words(&[initial as Word]),
            Inner::Ttas { data, .. } | Inner::Mcs { data, .. } => vec![(*data, initial as Word)],
        }
    }

    /// Initialize through a port (single-owner setup on the host machine).
    pub fn init_on<P: MemPort>(&self, port: &mut P, initial: u32) {
        for (addr, word) in self.init_words(initial) {
            port.write(addr, word);
        }
    }

    /// A processor-local handle for the processor driving `port`.
    pub fn handle<P: MemPort>(&self, port: &P) -> CounterHandle {
        let inner = match &self.inner {
            Inner::Stm { ops } => HandleInner::Stm { ops: ops.clone() },
            Inner::Herlihy { obj } => HandleInner::Herlihy { h: obj.handle(port) },
            Inner::Ttas { lock, data } => HandleInner::Ttas { lock: *lock, data: *data },
            Inner::Mcs { lock, data } => HandleInner::Mcs { lock: *lock, data: *data },
        };
        CounterHandle { inner }
    }
}

impl CounterHandle {
    /// Atomically increment; returns the previous value.
    pub fn increment<P: MemPort>(&mut self, port: &mut P) -> u32 {
        match &mut self.inner {
            HandleInner::Stm { ops } => ops.fetch_add(port, 0, 1),
            HandleInner::Herlihy { h } => h.update(port, |o| {
                let old = o[0];
                o[0] = (old as u32).wrapping_add(1) as Word;
                old as u32
            }),
            HandleInner::Ttas { lock, data } => {
                let data = *data;
                lock.with(port, |port| {
                    let v = port.read(data);
                    port.write(data, (v as u32).wrapping_add(1) as Word);
                    v as u32
                })
            }
            HandleInner::Mcs { lock, data } => {
                let data = *data;
                lock.with(port, |port| {
                    let v = port.read(data);
                    port.write(data, (v as u32).wrapping_add(1) as Word);
                    v as u32
                })
            }
        }
    }

    /// Current value.
    pub fn read<P: MemPort>(&mut self, port: &mut P) -> u32 {
        match &mut self.inner {
            HandleInner::Stm { ops } => ops.stm().read_cell(port, 0),
            HandleInner::Herlihy { h } => h.read(port)[0] as u32,
            HandleInner::Ttas { data, .. } | HandleInner::Mcs { data, .. } => {
                port.read(*data) as u32
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stm_core::machine::host::HostMachine;

    #[test]
    fn all_methods_count_correctly_on_host() {
        const PROCS: usize = 4;
        const PER: u32 = 400;
        for method in Method::ALL {
            let counter = Counter::new(method, 0, PROCS);
            let m = HostMachine::new(Counter::words_needed(method, PROCS), PROCS);
            {
                let mut port = m.port(0);
                counter.init_on(&mut port, 0);
            }
            std::thread::scope(|s| {
                for p in 0..PROCS {
                    let m = m.clone();
                    let counter = counter.clone();
                    s.spawn(move || {
                        let mut port = m.port(p);
                        let mut h = counter.handle(&port);
                        for _ in 0..PER {
                            h.increment(&mut port);
                        }
                    });
                }
            });
            let mut port = m.port(0);
            let mut h = counter.handle(&port);
            assert_eq!(h.read(&mut port), PROCS as u32 * PER, "{method}");
        }
    }

    #[test]
    fn increment_returns_old_value() {
        for method in Method::ALL {
            let counter = Counter::new(method, 0, 1);
            let m = HostMachine::new(Counter::words_needed(method, 1), 1);
            let mut port = m.port(0);
            counter.init_on(&mut port, 10);
            let mut h = counter.handle(&port);
            assert_eq!(h.increment(&mut port), 10, "{method}");
            assert_eq!(h.increment(&mut port), 11, "{method}");
            assert_eq!(h.read(&mut port), 12, "{method}");
        }
    }

    #[test]
    fn nonzero_base_address_works() {
        for method in Method::ALL {
            let base = 17;
            let counter = Counter::new(method, base, 2);
            let m = HostMachine::new(base + Counter::words_needed(method, 2), 2);
            let mut port = m.port(0);
            counter.init_on(&mut port, 5);
            let mut h = counter.handle(&port);
            assert_eq!(h.increment(&mut port), 5, "{method}");
        }
    }
}
