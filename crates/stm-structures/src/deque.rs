//! The paper's doubly-linked queue, literally: a linked-node deque.
//!
//! Where [`queue`](crate::queue) uses the compact ring representation, this
//! module implements the structure exactly as the paper's example describes
//! it — a doubly-linked list of nodes with head/tail pointers and a free
//! list, supporting pushes and pops at *both* ends. Every operation is a
//! static transaction over at most 8 cells:
//!
//! ```text
//! cells: HEAD TAIL FREE LEN DUMMY | node1{val,next,prev} node2{...} ...
//! ```
//!
//! The data set of e.g. `push_front` is `{FREE, HEAD, TAIL, LEN, f.val,
//! f.next, f.prev, h.prev-or-DUMMY}` where `f` (the free node) and `h` (the
//! current head) are read speculatively; the commit program re-validates the
//! speculation and is a no-op on mismatch, in which case the caller
//! re-speculates — the standard static-transaction idiom for pointer
//! structures. `DUMMY` is a scratch cell standing in for pointer fields of
//! null nodes so the data-set *shape* stays fixed.
//!
//! For the lock and Herlihy methods the deque uses its natural
//! representation under those disciplines (whole structure guarded /
//! copied); behaviour is identical, which the cross-method tests check.

use stm_core::machine::MemPort;
use stm_core::ops::StmOps;
use stm_core::program::OpCode;
use stm_core::word::{pack_cell, Addr, Word};
use stm_sync::{HerlihyHandle, HerlihyObject, McsLock, TtasLock};

use crate::Method;

const HEAD: usize = 0;
const TAIL: usize = 1;
const FREE: usize = 2;
const LEN: usize = 3;
const DUMMY: usize = 4;
const NODES: usize = 5;

/// Number of cells a deque of `cap` nodes occupies (STM representation).
fn stm_cells(cap: usize) -> usize {
    NODES + 3 * cap
}

fn node_cell(id: u32) -> usize {
    debug_assert!(id >= 1);
    NODES + 3 * (id as usize - 1)
}

/// A bounded deque of `u32` values built on a chosen [`Method`].
#[derive(Debug, Clone)]
pub struct Deque {
    capacity: usize,
    inner: Inner,
}

#[derive(Debug, Clone)]
enum Inner {
    Stm { ops: StmOps, progs: Progs },
    Herlihy { obj: HerlihyObject },
    Ttas { lock: TtasLock, data: Addr },
    Mcs { lock: McsLock, data: Addr },
}

#[derive(Debug, Clone, Copy)]
struct Progs {
    push_front: OpCode,
    push_back: OpCode,
    pop_front: OpCode,
    pop_back: OpCode,
}

/// A processor-local handle to a [`Deque`].
#[derive(Debug)]
pub struct DequeHandle {
    capacity: usize,
    inner: HandleInner,
}

#[derive(Debug)]
enum HandleInner {
    Stm { ops: StmOps, progs: Progs },
    Herlihy { h: HerlihyHandle },
    Ttas { lock: TtasLock, data: Addr },
    Mcs { lock: McsLock, data: Addr },
}

// ---------------------------------------------------------------------------
// STM commit programs. Data-set positions are fixed:
//   0 FREE, 1 HEAD, 2 TAIL, 3 LEN, 4 n.val, 5 n.next, 6 n.prev, 7 neighbour
// where `n` is the node being linked/unlinked and `neighbour` is the
// affected pointer field of the adjacent node (or DUMMY when null).
// ---------------------------------------------------------------------------

fn register_programs(b: &mut stm_core::program::ProgramTableBuilder) -> Progs {
    let push_front = b.register("deque.push_front", |params: &[Word], old: &[u32], new: &mut [u32]| {
        let (f, h, value) = (params[0] as u32, params[1] as u32, params[2] as u32);
        if f == 0 || old[0] != f || old[1] != h {
            return; // stale speculation
        }
        new[0] = old[5]; // FREE = f.free-link
        new[4] = value;
        new[5] = h; // f.next = head
        new[6] = 0; // f.prev = null
        new[1] = f; // HEAD = f
        if h != 0 {
            new[7] = f; // old head's prev = f
        } else {
            new[2] = f; // empty list: TAIL = f
        }
        new[3] = old[3] + 1;
    });
    let push_back = b.register("deque.push_back", |params: &[Word], old: &[u32], new: &mut [u32]| {
        let (f, t, value) = (params[0] as u32, params[1] as u32, params[2] as u32);
        if f == 0 || old[0] != f || old[2] != t {
            return;
        }
        new[0] = old[5];
        new[4] = value;
        new[5] = 0; // f.next = null
        new[6] = t; // f.prev = tail
        new[2] = f; // TAIL = f
        if t != 0 {
            new[7] = f; // old tail's next = f
        } else {
            new[1] = f;
        }
        new[3] = old[3] + 1;
    });
    let pop_front = b.register("deque.pop_front", |params: &[Word], old: &[u32], new: &mut [u32]| {
        let (h, hn) = (params[0] as u32, params[1] as u32);
        if h == 0 || old[1] != h || old[5] != hn {
            return;
        }
        new[1] = hn;
        if hn != 0 {
            new[7] = 0; // new head's prev = null
        } else {
            new[2] = 0; // list emptied
        }
        new[5] = old[0]; // h.free-link = old FREE
        new[0] = h; // FREE = h
        new[3] = old[3] - 1;
    });
    let pop_back = b.register("deque.pop_back", |params: &[Word], old: &[u32], new: &mut [u32]| {
        let (t, tp) = (params[0] as u32, params[1] as u32);
        if t == 0 || old[2] != t || old[6] != tp {
            return;
        }
        new[2] = tp;
        if tp != 0 {
            new[7] = 0; // new tail's next = null
        } else {
            new[1] = 0;
        }
        new[5] = old[0]; // t.free-link = old FREE (t.next is reused)
        new[0] = t;
        new[3] = old[3] - 1;
    });
    Progs { push_front, push_back, pop_front, pop_back }
}

impl Deque {
    /// Shared words needed for `method`, `n_procs`, `capacity`.
    pub fn words_needed(method: Method, n_procs: usize, capacity: usize) -> usize {
        match method {
            Method::Stm | Method::StmNoHelp => {
                StmOps::new(0, stm_cells(capacity), n_procs, 8, Method::Stm.stm_config())
                    .stm()
                    .layout()
                    .words_needed()
            }
            // Ring representation: head index, tail index, slots.
            Method::Herlihy => HerlihyObject::words_needed(2 + capacity, n_procs),
            Method::Ttas => TtasLock::words_needed() + 2 + capacity,
            Method::Mcs => McsLock::words_needed(n_procs) + 2 + capacity,
        }
    }

    /// Build a deque of `capacity` nodes at `base`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is 0.
    pub fn new(method: Method, base: Addr, n_procs: usize, capacity: usize) -> Self {
        assert!(capacity > 0, "deque capacity must be positive");
        let inner = match method {
            Method::Stm | Method::StmNoHelp => {
                let (ops, progs) = StmOps::with_programs(
                    base,
                    stm_cells(capacity),
                    n_procs,
                    8,
                    method.stm_config(),
                    register_programs,
                );
                Inner::Stm { ops, progs }
            }
            Method::Herlihy => {
                Inner::Herlihy { obj: HerlihyObject::new(base, 2 + capacity, n_procs) }
            }
            Method::Ttas => Inner::Ttas { lock: TtasLock::new(base), data: base + 1 },
            Method::Mcs => Inner::Mcs {
                lock: McsLock::new(base, n_procs),
                data: base + McsLock::words_needed(n_procs),
            },
        };
        Deque { capacity, inner }
    }

    /// Deque capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// `(address, word)` pairs pre-loading an empty deque (all nodes on the
    /// free list).
    pub fn init_words(&self) -> Vec<(Addr, Word)> {
        match &self.inner {
            Inner::Stm { ops, .. } => {
                let l = ops.stm().layout();
                let mut out = Vec::new();
                for c in 0..stm_cells(self.capacity) {
                    out.push((l.cell(c), pack_cell(0, 0)));
                }
                // Free list: node 1 -> 2 -> ... -> cap -> null, FREE = 1.
                out.push((l.cell(FREE), pack_cell(0, 1)));
                for id in 1..=self.capacity as u32 {
                    let next_free = if (id as usize) < self.capacity { id + 1 } else { 0 };
                    out.push((l.cell(node_cell(id) + 1), pack_cell(0, next_free)));
                }
                out
            }
            Inner::Herlihy { obj } => obj.initial_words(&vec![0; 2 + self.capacity]),
            Inner::Ttas { data, .. } | Inner::Mcs { data, .. } => {
                (0..2 + self.capacity).map(|i| (*data + i, 0)).collect()
            }
        }
    }

    /// Initialize through a port (host machine setup).
    pub fn init_on<P: MemPort>(&self, port: &mut P) {
        for (addr, word) in self.init_words() {
            port.write(addr, word);
        }
    }

    /// A processor-local handle.
    pub fn handle<P: MemPort>(&self, port: &P) -> DequeHandle {
        let inner = match &self.inner {
            Inner::Stm { ops, progs } => HandleInner::Stm { ops: ops.clone(), progs: *progs },
            Inner::Herlihy { obj } => HandleInner::Herlihy { h: obj.handle(port) },
            Inner::Ttas { lock, data } => HandleInner::Ttas { lock: *lock, data: *data },
            Inner::Mcs { lock, data } => HandleInner::Mcs { lock: *lock, data: *data },
        };
        DequeHandle { capacity: self.capacity, inner }
    }
}

/// Which end an operation works on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum End {
    /// The head (front).
    Front,
    /// The tail (back).
    Back,
}

impl DequeHandle {
    /// Push `value` at `end`; `false` if the deque was full.
    pub fn push<P: MemPort>(&mut self, port: &mut P, end: End, value: u32) -> bool {
        match end {
            End::Front => self.push_impl(port, value, true),
            End::Back => self.push_impl(port, value, false),
        }
    }

    /// Pop from `end`; `None` if the deque was empty.
    pub fn pop<P: MemPort>(&mut self, port: &mut P, end: End) -> Option<u32> {
        match end {
            End::Front => self.pop_impl(port, true),
            End::Back => self.pop_impl(port, false),
        }
    }

    /// Convenience: FIFO enqueue (push back).
    pub fn push_back<P: MemPort>(&mut self, port: &mut P, value: u32) -> bool {
        self.push(port, End::Back, value)
    }

    /// Convenience: FIFO dequeue (pop front).
    pub fn pop_front<P: MemPort>(&mut self, port: &mut P) -> Option<u32> {
        self.pop(port, End::Front)
    }

    /// Current length.
    pub fn len<P: MemPort>(&mut self, port: &mut P) -> usize {
        match &mut self.inner {
            HandleInner::Stm { ops, .. } => ops.stm().read_cell(port, LEN) as usize,
            HandleInner::Herlihy { h } => h.read(port)[1] as usize,
            HandleInner::Ttas { data, .. } | HandleInner::Mcs { data, .. } => {
                port.read(*data + 1) as usize
            }
        }
    }

    fn push_impl<P: MemPort>(&mut self, port: &mut P, value: u32, front: bool) -> bool {
        let cap = self.capacity;
        match &mut self.inner {
            HandleInner::Stm { ops, progs } => loop {
                let f = ops.stm().read_cell(port, FREE);
                if f == 0 {
                    return false; // free list empty == full (atomic single read)
                }
                let end_ptr = ops.stm().read_cell(port, if front { HEAD } else { TAIL });
                if end_ptr == f {
                    continue; // torn speculation (free node can't be in the list)
                }
                let neighbour = if end_ptr == 0 {
                    DUMMY
                } else if front {
                    node_cell(end_ptr) + 2 // head.prev
                } else {
                    node_cell(end_ptr) + 1 // tail.next
                };
                let nf = node_cell(f);
                let cells = [FREE, HEAD, TAIL, LEN, nf, nf + 1, nf + 2, neighbour];
                let params = [f as Word, end_ptr as Word, value as Word];
                let op = if front { progs.push_front } else { progs.push_back };
                let applied = ops.run_planned(port, op, &params, &cells, |old| {
                    old[0] == f && old[if front { 1 } else { 2 }] == end_ptr
                });
                if applied {
                    return true;
                }
                // stale speculation; retry
            },
            HandleInner::Herlihy { h } => h.update(port, |o| ring_push(o, cap, value, front)),
            HandleInner::Ttas { lock, data } => {
                let data = *data;
                lock.with(port, |port| lock_ring_push(port, data, cap, value, front))
            }
            HandleInner::Mcs { lock, data } => {
                let data = *data;
                lock.with(port, |port| lock_ring_push(port, data, cap, value, front))
            }
        }
    }

    fn pop_impl<P: MemPort>(&mut self, port: &mut P, front: bool) -> Option<u32> {
        let cap = self.capacity;
        match &mut self.inner {
            HandleInner::Stm { ops, progs } => loop {
                let n = ops.stm().read_cell(port, if front { HEAD } else { TAIL });
                if n == 0 {
                    return None; // atomic emptiness witness
                }
                let nc = node_cell(n);
                // The adjacent node (next for front, prev for back).
                let adj = ops.stm().read_cell(port, if front { nc + 1 } else { nc + 2 });
                if adj == n || adj as usize > self.capacity {
                    continue; // torn speculation (self-link or free-list link)
                }
                let neighbour = if adj == 0 {
                    DUMMY
                } else if front {
                    node_cell(adj) + 2 // adj.prev
                } else {
                    node_cell(adj) + 1 // adj.next
                };
                let cells = [FREE, HEAD, TAIL, LEN, nc, nc + 1, nc + 2, neighbour];
                let params = [n as Word, adj as Word];
                let op = if front { progs.pop_front } else { progs.pop_back };
                let applied = ops.run_planned(port, op, &params, &cells, |old| {
                    let ok = old[if front { 1 } else { 2 }] == n
                        && old[if front { 5 } else { 6 }] == adj;
                    ok.then_some(old[4])
                });
                if let Some(v) = applied {
                    return Some(v);
                }
                // stale speculation; retry
            },
            HandleInner::Herlihy { h } => h.update(port, |o| ring_pop(o, cap, front)),
            HandleInner::Ttas { lock, data } => {
                let data = *data;
                lock.with(port, |port| lock_ring_pop(port, data, cap, front))
            }
            HandleInner::Mcs { lock, data } => {
                let data = *data;
                lock.with(port, |port| lock_ring_pop(port, data, cap, front))
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Ring-buffer deque used by the Herlihy/lock representations:
// state = [start_slot, len, slots...].
// ---------------------------------------------------------------------------

fn ring_push(o: &mut [Word], cap: usize, value: u32, front: bool) -> bool {
    let (start, len) = (o[0] as usize, o[1] as usize);
    if len >= cap {
        return false;
    }
    if front {
        let ns = (start + cap - 1) % cap;
        o[2 + ns] = value as Word;
        o[0] = ns as Word;
    } else {
        o[2 + (start + len) % cap] = value as Word;
    }
    o[1] = (len + 1) as Word;
    true
}

fn ring_pop(o: &mut [Word], cap: usize, front: bool) -> Option<u32> {
    let (start, len) = (o[0] as usize, o[1] as usize);
    if len == 0 {
        return None;
    }
    let v = if front {
        let v = o[2 + start] as u32;
        o[0] = ((start + 1) % cap) as Word;
        v
    } else {
        o[2 + (start + len - 1) % cap] as u32
    };
    o[1] = (len - 1) as Word;
    Some(v)
}

fn lock_ring_push<P: MemPort>(port: &mut P, data: Addr, cap: usize, value: u32, front: bool) -> bool {
    let mut state: Vec<Word> = (0..2 + cap).map(|i| port.read(data + i)).collect();
    let ok = ring_push(&mut state, cap, value, front);
    if ok {
        for (i, w) in state.iter().enumerate() {
            port.write(data + i, *w);
        }
    }
    ok
}

fn lock_ring_pop<P: MemPort>(port: &mut P, data: Addr, cap: usize, front: bool) -> Option<u32> {
    let mut state: Vec<Word> = (0..2 + cap).map(|i| port.read(data + i)).collect();
    let v = ring_pop(&mut state, cap, front);
    if v.is_some() {
        for (i, w) in state.iter().enumerate() {
            port.write(data + i, *w);
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use stm_core::machine::host::HostMachine;

    fn make(method: Method, n_procs: usize, cap: usize) -> (Deque, HostMachine) {
        let d = Deque::new(method, 0, n_procs, cap);
        let m = HostMachine::new(Deque::words_needed(method, n_procs, cap), n_procs);
        let mut port = m.port(0);
        d.init_on(&mut port);
        (d, m)
    }

    #[test]
    fn fifo_and_lifo_both_ends() {
        for method in Method::ALL {
            let (d, m) = make(method, 1, 8);
            let mut port = m.port(0);
            let mut h = d.handle(&port);
            // FIFO: push back, pop front.
            assert!(h.push(&mut port, End::Back, 1), "{method}");
            assert!(h.push(&mut port, End::Back, 2));
            assert_eq!(h.pop(&mut port, End::Front), Some(1), "{method}");
            // LIFO: push front, pop front.
            assert!(h.push(&mut port, End::Front, 10));
            assert_eq!(h.pop(&mut port, End::Front), Some(10), "{method}");
            assert_eq!(h.pop(&mut port, End::Front), Some(2), "{method}");
            assert_eq!(h.pop(&mut port, End::Front), None, "{method}");
            assert_eq!(h.pop(&mut port, End::Back), None, "{method}");
        }
    }

    #[test]
    fn pop_back_reverses_push_back() {
        for method in Method::ALL {
            let (d, m) = make(method, 1, 8);
            let mut port = m.port(0);
            let mut h = d.handle(&port);
            for v in [1u32, 2, 3] {
                assert!(h.push(&mut port, End::Back, v), "{method}");
            }
            assert_eq!(h.pop(&mut port, End::Back), Some(3), "{method}");
            assert_eq!(h.pop(&mut port, End::Back), Some(2), "{method}");
            assert_eq!(h.pop(&mut port, End::Front), Some(1), "{method}");
        }
    }

    #[test]
    fn full_deque_rejects_both_ends() {
        for method in Method::ALL {
            let (d, m) = make(method, 1, 2);
            let mut port = m.port(0);
            let mut h = d.handle(&port);
            assert!(h.push(&mut port, End::Front, 1));
            assert!(h.push(&mut port, End::Back, 2));
            assert!(!h.push(&mut port, End::Front, 3), "{method}");
            assert!(!h.push(&mut port, End::Back, 3), "{method}");
            assert_eq!(h.pop(&mut port, End::Front), Some(1), "{method}");
            assert!(h.push(&mut port, End::Back, 3), "{method}: space reopens");
        }
    }

    #[test]
    fn node_recycling_survives_many_cycles() {
        for method in Method::ALL {
            let (d, m) = make(method, 1, 3);
            let mut port = m.port(0);
            let mut h = d.handle(&port);
            for round in 0..50u32 {
                let (pe, qe) = if round % 2 == 0 { (End::Front, End::Back) } else { (End::Back, End::Front) };
                assert!(h.push(&mut port, pe, round), "{method}");
                assert!(h.push(&mut port, qe, round + 1000), "{method}");
                let a = h.pop(&mut port, qe).unwrap();
                let b = h.pop(&mut port, pe).unwrap();
                assert_eq!(a + b, round + round + 1000, "{method}");
                assert_eq!(h.len(&mut port), 0, "{method}");
            }
        }
    }

    #[test]
    fn matches_vecdeque_reference_sequentially() {
        // Random-ish op mix vs std reference, for every method.
        for method in Method::ALL {
            let (d, m) = make(method, 1, 6);
            let mut port = m.port(0);
            let mut h = d.handle(&port);
            let mut reference = std::collections::VecDeque::new();
            let mut x = 12345u32;
            for _ in 0..400 {
                x = x.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
                let v = x % 997;
                match x % 4 {
                    0 => {
                        let ok = h.push(&mut port, End::Front, v);
                        if reference.len() < 6 {
                            assert!(ok, "{method}");
                            reference.push_front(v);
                        } else {
                            assert!(!ok, "{method}");
                        }
                    }
                    1 => {
                        let ok = h.push(&mut port, End::Back, v);
                        if reference.len() < 6 {
                            assert!(ok, "{method}");
                            reference.push_back(v);
                        } else {
                            assert!(!ok, "{method}");
                        }
                    }
                    2 => assert_eq!(h.pop(&mut port, End::Front), reference.pop_front(), "{method}"),
                    _ => assert_eq!(h.pop(&mut port, End::Back), reference.pop_back(), "{method}"),
                }
                assert_eq!(h.len(&mut port), reference.len(), "{method}");
            }
        }
    }

    #[test]
    fn concurrent_two_ended_traffic_conserves_items_on_host() {
        const PROCS: usize = 4;
        const PER: u32 = 150;
        for method in [Method::Stm, Method::Ttas] {
            let (d, m) = make(method, PROCS, 16);
            std::thread::scope(|s| {
                for p in 0..PROCS {
                    let d = d.clone();
                    let m = m.clone();
                    s.spawn(move || {
                        let mut port = m.port(p);
                        let mut h = d.handle(&port);
                        let my_end = if p % 2 == 0 { End::Front } else { End::Back };
                        for i in 0..PER {
                            while !h.push(&mut port, my_end, i) {
                                std::hint::spin_loop();
                            }
                            loop {
                                if h.pop(&mut port, my_end).is_some() {
                                    break;
                                }
                                std::hint::spin_loop();
                            }
                        }
                    });
                }
            });
            let mut port = m.port(0);
            let mut h = d.handle(&port);
            assert_eq!(h.len(&mut port), 0, "{method}: balanced traffic must drain");
        }
    }
}
