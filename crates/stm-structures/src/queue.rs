//! The doubly-linked (two-ended) FIFO queue benchmark.
//!
//! The paper's queue benchmark exercises transactions over *two* ends of one
//! structure: enqueuers update the tail, dequeuers the head, so operations on
//! a non-empty, non-full queue conflict only on their own end — precisely the
//! parallelism STM preserves and coarse methods (global locks, whole-object
//! copying) destroy.
//!
//! Representation: a bounded ring buffer with monotonically increasing
//! 32-bit head/tail indices (`slot = index mod capacity`). For the STM
//! method, each operation is a *static* transaction over
//! `{head, tail, one slot}`: the slot is chosen speculatively from a plain
//! read of the index, and the transaction's commit function validates the
//! speculation (re-trying on mismatch) — the standard way dynamic access
//! patterns are expressed with static transactions, as the paper's queue
//! example does.

use stm_core::machine::MemPort;
use stm_core::ops::StmOps;
use stm_core::program::OpCode;
use stm_core::word::{pack_cell, Addr, Word};
use stm_sync::{HerlihyHandle, HerlihyObject, McsLock, TtasLock};

use crate::Method;

const HEAD: usize = 0;
const TAIL: usize = 1;
const SLOTS: usize = 2;

/// A bounded FIFO queue of `u32` values built on a chosen [`Method`].
#[derive(Debug, Clone)]
pub struct FifoQueue {
    capacity: usize,
    inner: Inner,
}

#[derive(Debug, Clone)]
enum Inner {
    Stm { ops: StmOps, enq: OpCode, deq: OpCode },
    Herlihy { obj: HerlihyObject },
    Ttas { lock: TtasLock, data: Addr },
    Mcs { lock: McsLock, data: Addr },
}

/// A processor-local handle to a [`FifoQueue`].
#[derive(Debug)]
pub struct QueueHandle {
    capacity: usize,
    inner: HandleInner,
}

#[derive(Debug)]
enum HandleInner {
    Stm { ops: StmOps, enq: OpCode, deq: OpCode },
    Herlihy { h: HerlihyHandle },
    Ttas { lock: TtasLock, data: Addr },
    Mcs { lock: McsLock, data: Addr },
}

impl FifoQueue {
    /// Shared words needed for `method`, `n_procs`, `capacity`.
    pub fn words_needed(method: Method, n_procs: usize, capacity: usize) -> usize {
        let obj = SLOTS + capacity;
        match method {
            Method::Stm | Method::StmNoHelp => {
                StmOps::new(0, obj, n_procs, 3, Method::Stm.stm_config())
                    .stm()
                    .layout()
                    .words_needed()
            }
            Method::Herlihy => HerlihyObject::words_needed(obj, n_procs),
            Method::Ttas => TtasLock::words_needed() + obj,
            Method::Mcs => McsLock::words_needed(n_procs) + obj,
        }
    }

    /// Build a queue at `base`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is 0.
    pub fn new(method: Method, base: Addr, n_procs: usize, capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        let obj = SLOTS + capacity;
        let inner = match method {
            Method::Stm | Method::StmNoHelp => {
                let cap = capacity as u32;
                let (ops, (enq, deq)) = StmOps::with_programs(
                    base,
                    obj,
                    n_procs,
                    3,
                    method.stm_config(),
                    |b| {
                        let enq = b.register(
                            "queue.enq",
                            move |params: &[Word], old: &[u32], new: &mut [u32]| {
                                let (t_expected, value) = (params[0] as u32, params[1] as u32);
                                let (h, t) = (old[0], old[1]);
                                if t == t_expected && t.wrapping_sub(h) < cap {
                                    new[2] = value;
                                    new[1] = t.wrapping_add(1);
                                }
                            },
                        );
                        let deq = b.register(
                            "queue.deq",
                            move |params: &[Word], old: &[u32], new: &mut [u32]| {
                                let h_expected = params[0] as u32;
                                let (h, t) = (old[0], old[1]);
                                if h == h_expected && h != t {
                                    new[0] = h.wrapping_add(1);
                                }
                            },
                        );
                        (enq, deq)
                    },
                );
                Inner::Stm { ops, enq, deq }
            }
            Method::Herlihy => Inner::Herlihy { obj: HerlihyObject::new(base, obj, n_procs) },
            Method::Ttas => Inner::Ttas { lock: TtasLock::new(base), data: base + 1 },
            Method::Mcs => Inner::Mcs {
                lock: McsLock::new(base, n_procs),
                data: base + McsLock::words_needed(n_procs),
            },
        };
        FifoQueue { capacity, inner }
    }

    /// Queue capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// `(address, word)` pairs pre-loading an empty queue.
    pub fn init_words(&self) -> Vec<(Addr, Word)> {
        match &self.inner {
            Inner::Stm { ops, .. } => {
                let l = ops.stm().layout();
                (0..SLOTS + self.capacity).map(|i| (l.cell(i), pack_cell(0, 0))).collect()
            }
            Inner::Herlihy { obj } => obj.initial_words(&vec![0; SLOTS + self.capacity]),
            Inner::Ttas { data, .. } | Inner::Mcs { data, .. } => {
                (0..SLOTS + self.capacity).map(|i| (data + i, 0)).collect()
            }
        }
    }

    /// Initialize through a port (host machine setup).
    pub fn init_on<P: MemPort>(&self, port: &mut P) {
        for (addr, word) in self.init_words() {
            port.write(addr, word);
        }
    }

    /// A processor-local handle.
    pub fn handle<P: MemPort>(&self, port: &P) -> QueueHandle {
        let inner = match &self.inner {
            Inner::Stm { ops, enq, deq } => {
                HandleInner::Stm { ops: ops.clone(), enq: *enq, deq: *deq }
            }
            Inner::Herlihy { obj } => HandleInner::Herlihy { h: obj.handle(port) },
            Inner::Ttas { lock, data } => HandleInner::Ttas { lock: *lock, data: *data },
            Inner::Mcs { lock, data } => HandleInner::Mcs { lock: *lock, data: *data },
        };
        QueueHandle { capacity: self.capacity, inner }
    }
}

impl QueueHandle {
    /// Enqueue `value` at the tail. Returns `false` if the queue was full.
    pub fn enqueue<P: MemPort>(&mut self, port: &mut P, value: u32) -> bool {
        let cap = self.capacity;
        match &mut self.inner {
            HandleInner::Stm { ops, enq, .. } => loop {
                let t = ops.stm().read_cell(port, TAIL);
                let slot = SLOTS + (t as usize % cap);
                let params = [t as Word, value as Word];
                let cells = [HEAD, TAIL, slot];
                let (h0, t0) =
                    ops.run_planned(port, *enq, &params, &cells, |old| (old[0], old[1]));
                if t0 != t {
                    continue; // tail moved under us; re-speculate
                }
                return t0.wrapping_sub(h0) < cap as u32;
            },
            HandleInner::Herlihy { h } => h.update(port, |o| {
                let (hd, t) = (o[0] as u32, o[1] as u32);
                if t.wrapping_sub(hd) < cap as u32 {
                    o[SLOTS + (t as usize % cap)] = value as Word;
                    o[1] = t.wrapping_add(1) as Word;
                    true
                } else {
                    false
                }
            }),
            HandleInner::Ttas { lock, data } => {
                let data = *data;
                lock.with(port, |port| lock_enqueue(port, data, cap, value))
            }
            HandleInner::Mcs { lock, data } => {
                let data = *data;
                lock.with(port, |port| lock_enqueue(port, data, cap, value))
            }
        }
    }

    /// Dequeue from the head. Returns `None` if the queue was empty.
    pub fn dequeue<P: MemPort>(&mut self, port: &mut P) -> Option<u32> {
        let cap = self.capacity;
        match &mut self.inner {
            HandleInner::Stm { ops, deq, .. } => loop {
                let hd = ops.stm().read_cell(port, HEAD);
                let slot = SLOTS + (hd as usize % cap);
                let params = [hd as Word];
                let cells = [HEAD, TAIL, slot];
                let (h0, t0, v) =
                    ops.run_planned(port, *deq, &params, &cells, |old| (old[0], old[1], old[2]));
                if h0 != hd {
                    continue;
                }
                if h0 == t0 {
                    return None; // empty
                }
                return Some(v);
            },
            HandleInner::Herlihy { h } => h.update(port, |o| {
                let (hd, t) = (o[0] as u32, o[1] as u32);
                if hd == t {
                    None
                } else {
                    let v = o[SLOTS + (hd as usize % cap)] as u32;
                    o[0] = hd.wrapping_add(1) as Word;
                    Some(v)
                }
            }),
            HandleInner::Ttas { lock, data } => {
                let data = *data;
                lock.with(port, |port| lock_dequeue(port, data, cap))
            }
            HandleInner::Mcs { lock, data } => {
                let data = *data;
                lock.with(port, |port| lock_dequeue(port, data, cap))
            }
        }
    }

    /// Current length (consistent for STM/Herlihy; racy-but-bounded under
    /// the lock methods when read without the lock).
    pub fn len<P: MemPort>(&mut self, port: &mut P) -> usize {
        match &mut self.inner {
            HandleInner::Stm { ops, .. } => {
                let snap = ops.snapshot(port, &[HEAD, TAIL]);
                snap[1].wrapping_sub(snap[0]) as usize
            }
            HandleInner::Herlihy { h } => {
                let o = h.read(port);
                (o[1] as u32).wrapping_sub(o[0] as u32) as usize
            }
            HandleInner::Ttas { data, .. } | HandleInner::Mcs { data, .. } => {
                let hd = port.read(*data + HEAD) as u32;
                let t = port.read(*data + TAIL) as u32;
                t.wrapping_sub(hd) as usize
            }
        }
    }
}

fn lock_enqueue<P: MemPort>(port: &mut P, data: Addr, cap: usize, value: u32) -> bool {
    let hd = port.read(data + HEAD) as u32;
    let t = port.read(data + TAIL) as u32;
    if t.wrapping_sub(hd) >= cap as u32 {
        return false;
    }
    port.write(data + SLOTS + (t as usize % cap), value as Word);
    port.write(data + TAIL, t.wrapping_add(1) as Word);
    true
}

fn lock_dequeue<P: MemPort>(port: &mut P, data: Addr, cap: usize) -> Option<u32> {
    let hd = port.read(data + HEAD) as u32;
    let t = port.read(data + TAIL) as u32;
    if hd == t {
        return None;
    }
    let v = port.read(data + SLOTS + (hd as usize % cap)) as u32;
    port.write(data + HEAD, hd.wrapping_add(1) as Word);
    Some(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stm_core::machine::host::HostMachine;

    fn make(method: Method, n_procs: usize, cap: usize) -> (FifoQueue, HostMachine) {
        let q = FifoQueue::new(method, 0, n_procs, cap);
        let m = HostMachine::new(FifoQueue::words_needed(method, n_procs, cap), n_procs);
        let mut port = m.port(0);
        q.init_on(&mut port);
        (q, m)
    }

    #[test]
    fn fifo_order_single_threaded() {
        for method in Method::ALL {
            let (q, m) = make(method, 1, 4);
            let mut port = m.port(0);
            let mut h = q.handle(&port);
            assert_eq!(h.dequeue(&mut port), None, "{method}");
            assert!(h.enqueue(&mut port, 10));
            assert!(h.enqueue(&mut port, 20));
            assert_eq!(h.len(&mut port), 2, "{method}");
            assert_eq!(h.dequeue(&mut port), Some(10), "{method}");
            assert_eq!(h.dequeue(&mut port), Some(20), "{method}");
            assert_eq!(h.dequeue(&mut port), None, "{method}");
        }
    }

    #[test]
    fn full_queue_rejects() {
        for method in Method::ALL {
            let (q, m) = make(method, 1, 2);
            let mut port = m.port(0);
            let mut h = q.handle(&port);
            assert!(h.enqueue(&mut port, 1));
            assert!(h.enqueue(&mut port, 2));
            assert!(!h.enqueue(&mut port, 3), "{method}");
            assert_eq!(h.dequeue(&mut port), Some(1));
            assert!(h.enqueue(&mut port, 3), "{method}: space must reopen");
        }
    }

    #[test]
    fn ring_wraps_many_times() {
        for method in Method::ALL {
            let (q, m) = make(method, 1, 3);
            let mut port = m.port(0);
            let mut h = q.handle(&port);
            for i in 0..100u32 {
                assert!(h.enqueue(&mut port, i));
                assert_eq!(h.dequeue(&mut port), Some(i), "{method}");
            }
        }
    }

    #[test]
    fn spsc_preserves_fifo_on_host() {
        const N: u32 = 500;
        for method in Method::ALL {
            let (q, m) = make(method, 2, 8);
            std::thread::scope(|s| {
                {
                    let q = q.clone();
                    let m = m.clone();
                    s.spawn(move || {
                        let mut port = m.port(0);
                        let mut h = q.handle(&port);
                        for i in 0..N {
                            while !h.enqueue(&mut port, i) {}
                        }
                    });
                }
                let q = q.clone();
                let m = m.clone();
                s.spawn(move || {
                    let mut port = m.port(1);
                    let mut h = q.handle(&port);
                    let mut expected = 0;
                    while expected < N {
                        if let Some(v) = h.dequeue(&mut port) {
                            assert_eq!(v, expected, "{method}: FIFO violated");
                            expected += 1;
                        }
                    }
                });
            });
        }
    }

    #[test]
    fn mpmc_conserves_items_on_host() {
        const PROCS: usize = 4;
        const PER: u32 = 200;
        for method in Method::ALL {
            let (q, m) = make(method, PROCS, 16);
            let total_deq = std::sync::atomic::AtomicU64::new(0);
            std::thread::scope(|s| {
                for p in 0..PROCS {
                    let q = q.clone();
                    let m = m.clone();
                    let total_deq = &total_deq;
                    s.spawn(move || {
                        let mut port = m.port(p);
                        let mut h = q.handle(&port);
                        if p % 2 == 0 {
                            for i in 0..PER {
                                while !h.enqueue(&mut port, i) {
                                    std::hint::spin_loop();
                                }
                            }
                        } else {
                            let mut got = 0;
                            while got < PER {
                                if h.dequeue(&mut port).is_some() {
                                    got += 1;
                                }
                            }
                            total_deq.fetch_add(got as u64, std::sync::atomic::Ordering::SeqCst);
                        }
                    });
                }
            });
            let mut port = m.port(0);
            let mut h = q.handle(&port);
            assert_eq!(h.len(&mut port), 0, "{method}: producers==consumers so queue drains");
        }
    }
}
