//! Blocking structures over the dynamic STM's `retry` / `or_else`
//! composition.
//!
//! Everything in the rest of this crate is *non-blocking*: a full queue
//! rejects the push, an empty queue returns `None`, and the caller spins.
//! This module is the payoff of [`DynamicStm::run_blocking`]: the same
//! structures expressed as **conditions** — a push on a full queue parks the
//! caller until a consumer makes room, with no spin CPU on the host and zero
//! scheduler steps on the simulator (the B1 producer–consumer bench measures
//! exactly this against the spin-retry baseline).
//!
//! Each structure is laid out over a caller-provided [`DynamicStm`] cell
//! range, and every operation comes in three flavors:
//!
//! * a `*_tx` form taking a [`DynamicTx`] — composable: combine conditions
//!   from several structures in one transaction, or race two of them with
//!   [`DynamicStm::run_or_else`] (see [`BoundedQueue::pop_tx`]);
//! * a blocking form that wraps the `*_tx` form in
//!   [`DynamicStm::run_blocking`];
//! * a `try_*` form that runs non-blocking and reports would-block instead
//!   of parking.

use stm_core::contention::ContentionManager;
use stm_core::durable::Journal;
use stm_core::dynamic::{DynamicStm, DynamicTx, Retry};
use stm_core::machine::MemPort;
use stm_core::observe::TxObserver;
use stm_core::stm::{TxError, TxOptions};
use stm_core::word::CellIdx;

const HEAD: usize = 0;
const TAIL: usize = 1;
const SLOTS: usize = 2;

/// A bounded MPMC FIFO queue whose push **blocks when full** and whose pop
/// **blocks when empty**.
///
/// Ring representation over `2 + capacity` cells starting at `base`:
/// monotonically increasing head/tail indices plus one cell per slot — the
/// same layout as the non-blocking [`FifoQueue`](crate::queue::FifoQueue),
/// but expressed as dynamic transactions so emptiness/fullness become
/// [`DynamicTx::retry`] conditions instead of error returns.
#[derive(Debug, Clone, Copy)]
pub struct BoundedQueue {
    base: CellIdx,
    capacity: usize,
}

impl BoundedQueue {
    /// Cells this queue occupies starting at its base.
    pub const fn cells_needed(capacity: usize) -> usize {
        SLOTS + capacity
    }

    /// A queue over `stm` cells `base .. base + cells_needed(capacity)`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is 0.
    pub fn new(base: CellIdx, capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        BoundedQueue { base, capacity }
    }

    /// Queue capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Initialize the queue's cells to empty before concurrent use.
    pub fn init<P: MemPort>(&self, stm: &DynamicStm, port: &mut P) {
        for c in 0..Self::cells_needed(self.capacity) {
            stm.init_cell(port, self.base + c, 0);
        }
    }

    /// The push condition: enqueue `value`, or retry while the queue is
    /// full. Composable inside any blocking transaction.
    pub fn push_tx<P: MemPort>(
        &self,
        tx: &mut DynamicTx<'_, P>,
        value: u32,
    ) -> Result<(), Retry> {
        let h = tx.read(self.base + HEAD);
        let t = tx.read(self.base + TAIL);
        if t.wrapping_sub(h) >= self.capacity as u32 {
            return tx.retry(); // full: park until a pop moves HEAD
        }
        tx.write(self.base + SLOTS + (t as usize % self.capacity), value);
        tx.write(self.base + TAIL, t.wrapping_add(1));
        Ok(())
    }

    /// The pop condition: dequeue the head, or retry while the queue is
    /// empty.
    pub fn pop_tx<P: MemPort>(&self, tx: &mut DynamicTx<'_, P>) -> Result<u32, Retry> {
        let h = tx.read(self.base + HEAD);
        let t = tx.read(self.base + TAIL);
        if h == t {
            return tx.retry(); // empty: park until a push moves TAIL
        }
        let v = tx.read(self.base + SLOTS + (h as usize % self.capacity));
        tx.write(self.base + HEAD, h.wrapping_add(1));
        Ok(v)
    }

    /// Enqueue `value`, parking (not spinning) while the queue is full.
    ///
    /// # Errors
    ///
    /// Whatever [`DynamicStm::run_blocking`] reports under `opts` (budget
    /// exhaustion, wakeup-budget [`TxError::Retry`], ...).
    pub fn push<P, O, C, J>(
        &self,
        stm: &DynamicStm,
        port: &mut P,
        value: u32,
        opts: &mut TxOptions<O, C, J>,
    ) -> Result<(), TxError>
    where
        P: MemPort,
        O: TxObserver,
        C: ContentionManager,
        J: Journal,
    {
        stm.run_blocking(port, |tx| self.push_tx(tx, value), opts).map(|_| ())
    }

    /// Dequeue the head, parking while the queue is empty.
    ///
    /// # Errors
    ///
    /// Same as [`BoundedQueue::push`].
    pub fn pop<P, O, C, J>(
        &self,
        stm: &DynamicStm,
        port: &mut P,
        opts: &mut TxOptions<O, C, J>,
    ) -> Result<u32, TxError>
    where
        P: MemPort,
        O: TxObserver,
        C: ContentionManager,
        J: Journal,
    {
        stm.run_blocking(port, |tx| self.pop_tx(tx), opts).map(|(v, _)| v)
    }

    /// Non-blocking enqueue: `false` instead of parking when full.
    pub fn try_push<P: MemPort>(&self, stm: &DynamicStm, port: &mut P, value: u32) -> bool {
        stm.run(
            port,
            |tx| {
                let h = tx.read(self.base + HEAD);
                let t = tx.read(self.base + TAIL);
                if t.wrapping_sub(h) >= self.capacity as u32 {
                    return false;
                }
                tx.write(self.base + SLOTS + (t as usize % self.capacity), value);
                tx.write(self.base + TAIL, t.wrapping_add(1));
                true
            },
            &mut TxOptions::new(),
        )
        .map(|(ok, _)| ok)
        .unwrap_or(false)
    }

    /// Non-blocking dequeue: `None` instead of parking when empty.
    pub fn try_pop<P: MemPort>(&self, stm: &DynamicStm, port: &mut P) -> Option<u32> {
        stm.run(
            port,
            |tx| {
                let h = tx.read(self.base + HEAD);
                let t = tx.read(self.base + TAIL);
                if h == t {
                    return None;
                }
                let v = tx.read(self.base + SLOTS + (h as usize % self.capacity));
                tx.write(self.base + HEAD, h.wrapping_add(1));
                Some(v)
            },
            &mut TxOptions::new(),
        )
        .ok()
        .and_then(|(v, _)| v)
    }

    /// Consistent current length.
    pub fn len<P: MemPort>(&self, stm: &DynamicStm, port: &mut P) -> usize {
        stm.run(
            port,
            |tx| {
                let h = tx.read(self.base + HEAD);
                tx.read(self.base + TAIL).wrapping_sub(h) as usize
            },
            &mut TxOptions::new(),
        )
        .map(|(n, _)| n)
        .unwrap_or(0)
    }
}

/// A counting semaphore: [`acquire`](Semaphore::acquire) parks while no
/// permits are available. One cell.
#[derive(Debug, Clone, Copy)]
pub struct Semaphore {
    cell: CellIdx,
}

impl Semaphore {
    /// Cells a semaphore occupies.
    pub const CELLS: usize = 1;

    /// A semaphore over `stm` cell `cell`.
    pub fn new(cell: CellIdx) -> Self {
        Semaphore { cell }
    }

    /// Initialize with `permits` permits before concurrent use.
    pub fn init<P: MemPort>(&self, stm: &DynamicStm, port: &mut P, permits: u32) {
        stm.init_cell(port, self.cell, permits);
    }

    /// The acquire condition: take one permit, or retry while none are
    /// available. Composable — e.g. acquire two semaphores atomically in one
    /// blocking transaction (no lock-ordering deadlock: the transaction
    /// either takes both or parks holding neither).
    pub fn acquire_tx<P: MemPort>(&self, tx: &mut DynamicTx<'_, P>) -> Result<(), Retry> {
        let n = tx.read(self.cell);
        if n == 0 {
            return tx.retry();
        }
        tx.write(self.cell, n - 1);
        Ok(())
    }

    /// Take one permit, parking while none are available.
    ///
    /// # Errors
    ///
    /// Whatever [`DynamicStm::run_blocking`] reports under `opts`.
    pub fn acquire<P, O, C, J>(
        &self,
        stm: &DynamicStm,
        port: &mut P,
        opts: &mut TxOptions<O, C, J>,
    ) -> Result<(), TxError>
    where
        P: MemPort,
        O: TxObserver,
        C: ContentionManager,
        J: Journal,
    {
        stm.run_blocking(port, |tx| self.acquire_tx(tx), opts).map(|_| ())
    }

    /// Non-blocking acquire: `false` instead of parking.
    pub fn try_acquire<P: MemPort>(&self, stm: &DynamicStm, port: &mut P) -> bool {
        stm.run(
            port,
            |tx| {
                let n = tx.read(self.cell);
                if n == 0 {
                    return false;
                }
                tx.write(self.cell, n - 1);
                true
            },
            &mut TxOptions::new(),
        )
        .map(|(ok, _)| ok)
        .unwrap_or(false)
    }

    /// Return one permit, waking a parked acquirer if any.
    pub fn release<P: MemPort>(&self, stm: &DynamicStm, port: &mut P) {
        let _ = stm.run(
            port,
            |tx| {
                let n = tx.read(self.cell);
                tx.write(self.cell, n + 1);
            },
            &mut TxOptions::new(),
        );
    }

    /// Currently available permits.
    pub fn available<P: MemPort>(&self, stm: &DynamicStm, port: &mut P) -> u32 {
        stm.read_cell(port, self.cell)
    }
}

/// A pool of `m` resources with **atomic blocking multi-acquire**: take any
/// `k` free resources in one transaction, parking until `k` are free — the
/// blocking form of the paper's resource-allocation benchmark (the
/// non-blocking [`ResourcePool`](crate::resource::ResourcePool) makes the
/// caller retry). One cell per resource (`0` free, owner proc + 1 when
/// taken), so wakeups are per-resource.
#[derive(Debug, Clone, Copy)]
pub struct BlockingPool {
    base: CellIdx,
    m: usize,
}

impl BlockingPool {
    /// Cells a pool of `m` resources occupies.
    pub const fn cells_needed(m: usize) -> usize {
        m
    }

    /// A pool over `stm` cells `base .. base + m`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is 0.
    pub fn new(base: CellIdx, m: usize) -> Self {
        assert!(m > 0, "pool must hold at least one resource");
        BlockingPool { base, m }
    }

    /// Number of resources in the pool.
    pub fn n_resources(&self) -> usize {
        self.m
    }

    /// Initialize all resources free before concurrent use.
    pub fn init<P: MemPort>(&self, stm: &DynamicStm, port: &mut P) {
        for c in 0..self.m {
            stm.init_cell(port, self.base + c, 0);
        }
    }

    /// The condition: claim any `k` free resources for `proc`, or retry
    /// while fewer than `k` are free. Returns the claimed indices,
    /// ascending.
    ///
    /// # Panics
    ///
    /// Panics if `k` is 0 or exceeds the pool size (such a call could never
    /// succeed, so parking on it would sleep forever).
    pub fn acquire_tx<P: MemPort>(
        &self,
        tx: &mut DynamicTx<'_, P>,
        k: usize,
        proc: usize,
    ) -> Result<Vec<usize>, Retry> {
        assert!(k > 0 && k <= self.m, "cannot acquire {k} of {} resources", self.m);
        let mut got = Vec::with_capacity(k);
        for i in 0..self.m {
            if tx.read(self.base + i) == 0 {
                got.push(i);
                if got.len() == k {
                    break;
                }
            }
        }
        if got.len() < k {
            // Fewer than k free: the read set covers every cell scanned
            // (in particular every taken one), so any release re-runs us.
            return tx.retry();
        }
        for &i in &got {
            tx.write(self.base + i, proc as u32 + 1);
        }
        Ok(got)
    }

    /// Claim any `k` free resources atomically, parking until `k` are free.
    ///
    /// # Errors
    ///
    /// Whatever [`DynamicStm::run_blocking`] reports under `opts`.
    pub fn acquire<P, O, C, J>(
        &self,
        stm: &DynamicStm,
        port: &mut P,
        k: usize,
        opts: &mut TxOptions<O, C, J>,
    ) -> Result<Vec<usize>, TxError>
    where
        P: MemPort,
        O: TxObserver,
        C: ContentionManager,
        J: Journal,
    {
        let proc = port.proc_id();
        stm.run_blocking(port, |tx| self.acquire_tx(tx, k, proc), opts).map(|(v, _)| v)
    }

    /// Release previously acquired resources, waking parked acquirers.
    pub fn release<P: MemPort>(&self, stm: &DynamicStm, port: &mut P, indices: &[usize]) {
        let _ = stm.run(
            port,
            |tx| {
                for &i in indices {
                    tx.write(self.base + i, 0);
                }
            },
            &mut TxOptions::new(),
        );
    }

    /// How many resources are currently free (consistent snapshot).
    pub fn free<P: MemPort>(&self, stm: &DynamicStm, port: &mut P) -> usize {
        stm.run(
            port,
            |tx| (0..self.m).filter(|&i| tx.read(self.base + i) == 0).count(),
            &mut TxOptions::new(),
        )
        .map(|(n, _)| n)
        .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stm_core::machine::host::HostMachine;
    use stm_core::stm::{StmConfig, TxBudget};

    fn setup(n_cells: usize, n_procs: usize) -> (DynamicStm, HostMachine) {
        let stm = DynamicStm::new(0, n_cells, n_procs, StmConfig::default());
        let machine = HostMachine::new(stm.stm().layout().words_needed(), n_procs);
        (stm, machine)
    }

    #[test]
    fn queue_fifo_and_try_forms_single_threaded() {
        let (stm, m) = setup(BoundedQueue::cells_needed(3), 1);
        let q = BoundedQueue::new(0, 3);
        let mut port = m.port(0);
        q.init(&stm, &mut port);
        assert_eq!(q.try_pop(&stm, &mut port), None);
        assert!(q.try_push(&stm, &mut port, 10));
        assert!(q.try_push(&stm, &mut port, 20));
        assert!(q.try_push(&stm, &mut port, 30));
        assert!(!q.try_push(&stm, &mut port, 40), "full queue rejects");
        assert_eq!(q.len(&stm, &mut port), 3);
        assert_eq!(q.try_pop(&stm, &mut port), Some(10));
        assert_eq!(q.try_pop(&stm, &mut port), Some(20));
        assert!(q.try_push(&stm, &mut port, 40), "space reopened");
        assert_eq!(q.try_pop(&stm, &mut port), Some(30));
        assert_eq!(q.try_pop(&stm, &mut port), Some(40));
        assert_eq!(q.try_pop(&stm, &mut port), None);
    }

    #[test]
    fn blocking_pop_waits_for_producer_on_host() {
        let (stm, m) = setup(BoundedQueue::cells_needed(2), 2);
        let q = BoundedQueue::new(0, 2);
        {
            let mut port = m.port(0);
            q.init(&stm, &mut port);
        }
        std::thread::scope(|s| {
            {
                let (stm, m) = (stm.clone(), m.clone());
                s.spawn(move || {
                    let mut port = m.port(1);
                    std::thread::sleep(std::time::Duration::from_millis(30));
                    q.push(&stm, &mut port, 77, &mut TxOptions::new()).unwrap();
                });
            }
            let mut port = m.port(0);
            // Parks on the empty queue; woken by the producer's install.
            assert_eq!(q.pop(&stm, &mut port, &mut TxOptions::new()).unwrap(), 77);
        });
    }

    #[test]
    fn blocking_push_waits_for_room_on_host() {
        let (stm, m) = setup(BoundedQueue::cells_needed(1), 2);
        let q = BoundedQueue::new(0, 1);
        {
            let mut port = m.port(0);
            q.init(&stm, &mut port);
            assert!(q.try_push(&stm, &mut port, 1)); // now full
        }
        std::thread::scope(|s| {
            {
                let (stm, m) = (stm.clone(), m.clone());
                s.spawn(move || {
                    let mut port = m.port(1);
                    std::thread::sleep(std::time::Duration::from_millis(30));
                    assert_eq!(q.try_pop(&stm, &mut port), Some(1));
                });
            }
            let mut port = m.port(0);
            q.push(&stm, &mut port, 2, &mut TxOptions::new()).unwrap();
            assert_eq!(q.try_pop(&stm, &mut port), Some(2));
        });
    }

    #[test]
    fn or_else_races_two_queues() {
        let cells = BoundedQueue::cells_needed(2);
        let (stm, m) = setup(2 * cells, 1);
        let a = BoundedQueue::new(0, 2);
        let b = BoundedQueue::new(cells, 2);
        let mut port = m.port(0);
        a.init(&stm, &mut port);
        b.init(&stm, &mut port);
        assert!(b.try_push(&stm, &mut port, 9));
        // a is empty: the first branch retries, the second pops b.
        let (v, _) = stm
            .run_or_else(
                &mut port,
                |tx| a.pop_tx(tx),
                |tx| b.pop_tx(tx),
                &mut TxOptions::new(),
            )
            .unwrap();
        assert_eq!(v, 9);
        // Both empty with a zero wakeup budget: fails instead of parking.
        let err = stm
            .run_or_else(
                &mut port,
                |tx| a.pop_tx(tx),
                |tx| b.pop_tx(tx),
                &mut TxOptions::new().budget(TxBudget::wakeups(0)),
            )
            .unwrap_err();
        assert!(matches!(err, TxError::Retry { wakeups: 0 }), "{err}");
    }

    #[test]
    fn semaphore_handoff_blocks_and_wakes() {
        let (stm, m) = setup(Semaphore::CELLS, 2);
        let sem = Semaphore::new(0);
        {
            let mut port = m.port(0);
            sem.init(&stm, &mut port, 0); // no permits yet
        }
        std::thread::scope(|s| {
            {
                let (stm, m) = (stm.clone(), m.clone());
                s.spawn(move || {
                    let mut port = m.port(1);
                    std::thread::sleep(std::time::Duration::from_millis(30));
                    sem.release(&stm, &mut port);
                });
            }
            let mut port = m.port(0);
            assert!(!sem.try_acquire(&stm, &mut port));
            sem.acquire(&stm, &mut port, &mut TxOptions::new()).unwrap();
            assert_eq!(sem.available(&stm, &mut port), 0);
        });
    }

    #[test]
    fn pool_multi_acquire_is_atomic_and_blocking() {
        let (stm, m) = setup(BlockingPool::cells_needed(4), 2);
        let pool = BlockingPool::new(0, 4);
        {
            let mut port = m.port(0);
            pool.init(&stm, &mut port);
            // Take 3 of 4 so only one is free.
            let got = pool.acquire(&stm, &mut port, 3, &mut TxOptions::new()).unwrap();
            assert_eq!(got.len(), 3);
        }
        std::thread::scope(|s| {
            {
                let (stm, m) = (stm.clone(), m.clone());
                s.spawn(move || {
                    let mut port = m.port(1);
                    std::thread::sleep(std::time::Duration::from_millis(30));
                    // Free two resources; the parked 2-acquire can now land.
                    pool.release(&stm, &mut port, &[0, 1]);
                });
            }
            let mut port = m.port(0);
            let got = pool.acquire(&stm, &mut port, 2, &mut TxOptions::new()).unwrap();
            assert_eq!(got.len(), 2);
            // 4 free → 3 taken → 2 released → 2 taken again: one remains.
            assert_eq!(pool.free(&stm, &mut port), 1);
        });
    }
}
