//! A sorted linked-list set over static transactions.
//!
//! The paper argues static transactions suffice for pointer structures: the
//! program *traverses* the structure with plain (committed-value) reads, and
//! performs the mutation as a small static transaction whose commit function
//! re-validates the traversal — retrying if the structure moved. The deque
//! ([`crate::deque`]) shows the two-ended case; this module shows the
//! general *search structure* case: a sorted singly-linked list set with
//! `insert`, `remove`, and `contains`.
//!
//! Layout (STM cells):
//!
//! ```text
//! HEAD FREE DUMMY | node1{key,next,seq} node2{key,next,seq} ...
//! ```
//!
//! The correctness subtlety of lock-free lists — a traversed predecessor may
//! be unlinked (and even recycled) before the mutation commits — is handled
//! with a per-node **link/unlink sequence number** (`seq`, bumped by every
//! link and unlink): a mutation's data set includes the predecessor's `seq`,
//! and its commit program re-validates it against the value observed during
//! traversal. If the `seq` still matches, the predecessor has not been
//! unlinked since the traversal reached it from the head, so it is still
//! reachable, and the local `prev.next == succ` check pins the rest
//! (`seq` is 32-bit; an ABA needs 2^32 relinks of one node inside a single
//! operation — the usual bounded-tag compromise, see DESIGN.md §4).

use stm_core::machine::MemPort;
use stm_core::ops::StmOps;
use stm_core::program::OpCode;
use stm_core::stm::StmConfig;
use stm_core::word::{pack_cell, Addr, Word};

const HEAD: usize = 0;
const FREE: usize = 1;
const DUMMY: usize = 2;
const NODES: usize = 3;

/// Sentinel key meaning "+infinity"; real keys must be smaller.
pub const KEY_MAX: u32 = u32::MAX;

fn node_key(id: u32) -> usize {
    debug_assert!(id >= 1);
    NODES + 3 * (id as usize - 1)
}

fn node_next(id: u32) -> usize {
    node_key(id) + 1
}

fn node_seq(id: u32) -> usize {
    node_key(id) + 2
}

/// A concurrent sorted set of `u32` keys (< [`KEY_MAX`]) with bounded
/// capacity, built on the Shavit–Touitou STM.
#[derive(Debug, Clone)]
pub struct ListSet {
    ops: StmOps,
    insert_op: OpCode,
    remove_op: OpCode,
    capacity: usize,
}

impl ListSet {
    /// Shared words needed for `n_procs` and `capacity` nodes.
    pub fn words_needed(n_procs: usize, capacity: usize) -> usize {
        StmOps::new(0, NODES + 3 * capacity, n_procs, 6, StmConfig::default())
            .stm()
            .layout()
            .words_needed()
    }

    /// Build a set of up to `capacity` keys at `base`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is 0.
    pub fn new(base: Addr, n_procs: usize, capacity: usize, config: StmConfig) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        let (ops, (insert_op, remove_op)) = StmOps::with_programs(
            base,
            NODES + 3 * capacity,
            n_procs,
            6,
            config,
            |b| {
                // Data set: [FREE, prev.next, prev.seq|DUMMY, f.key, f.next, f.seq]
                // Params:   [f, succ, key, prev_seq, prev_is_head]
                let insert_op = b.register(
                    "listset.insert",
                    |params: &[Word], old: &[u32], new: &mut [u32]| {
                        let (f, succ, key) = (params[0] as u32, params[1] as u32, params[2] as u32);
                        let (prev_seq, prev_is_head) = (params[3] as u32, params[4] != 0);
                        let prev_live = prev_is_head || old[2] == prev_seq;
                        if f == 0 || old[0] != f || old[1] != succ || !prev_live {
                            return; // stale speculation
                        }
                        new[0] = old[4]; // FREE = f.free-link (stored in f.next)
                        new[3] = key;
                        new[4] = succ; // f.next = succ
                        new[5] = old[5].wrapping_add(1); // link event
                        new[1] = f; // prev.next = f
                    },
                );
                // Data set: [FREE, prev.next, prev.seq|DUMMY, v.key, v.next, v.seq]
                // Params:   [victim, key, prev_seq, prev_is_head]
                let remove_op = b.register(
                    "listset.remove",
                    |params: &[Word], old: &[u32], new: &mut [u32]| {
                        let (victim, key) = (params[0] as u32, params[1] as u32);
                        let (prev_seq, prev_is_head) = (params[2] as u32, params[3] != 0);
                        let prev_live = prev_is_head || old[2] == prev_seq;
                        if old[1] != victim || old[3] != key || !prev_live {
                            return;
                        }
                        new[1] = old[4]; // prev.next = victim.next
                        new[3] = KEY_MAX; // tag before reuse
                        new[4] = old[0]; // victim.free-link = old FREE
                        new[5] = old[5].wrapping_add(1); // unlink event
                        new[0] = victim; // FREE = victim
                    },
                );
                (insert_op, remove_op)
            },
        );
        ListSet { ops, insert_op, remove_op, capacity }
    }

    /// `(address, word)` pairs pre-loading an empty set (all nodes free).
    pub fn init_words(&self) -> Vec<(Addr, Word)> {
        let l = self.ops.stm().layout();
        let mut out = vec![
            (l.cell(HEAD), pack_cell(0, 0)),
            (l.cell(FREE), pack_cell(0, 1)),
            (l.cell(DUMMY), pack_cell(0, 0)),
        ];
        for id in 1..=self.capacity as u32 {
            let next_free = if (id as usize) < self.capacity { id + 1 } else { 0 };
            out.push((l.cell(node_key(id)), pack_cell(0, KEY_MAX)));
            out.push((l.cell(node_next(id)), pack_cell(0, next_free)));
            out.push((l.cell(node_seq(id)), pack_cell(0, 0)));
        }
        out
    }

    /// Initialize through a port (host machine setup).
    pub fn init_on<P: MemPort>(&self, port: &mut P) {
        for (addr, word) in self.init_words() {
            port.write(addr, word);
        }
    }

    /// Traverse to the window for `key`: returns
    /// `(prev_id /*0=head*/, prev_seq, succ_id /*0=end*/, succ_key)` with
    /// `prev.key < key <= succ.key` over committed reads.
    fn locate<P: MemPort>(&self, port: &mut P, key: u32) -> (u32, u32, u32, u32) {
        let stm = self.ops.stm();
        let mut prev = 0u32; // 0 = head
        let mut prev_seq = 0u32;
        let mut steps = 0usize;
        loop {
            let next_cell = if prev == 0 { HEAD } else { node_next(prev) };
            let succ = stm.read_cell(port, next_cell);
            if succ == 0 || succ as usize > self.capacity {
                return (prev, prev_seq, 0, KEY_MAX);
            }
            let succ_key = stm.read_cell(port, node_key(succ));
            if succ_key >= key {
                return (prev, prev_seq, succ, succ_key);
            }
            prev = succ;
            prev_seq = stm.read_cell(port, node_seq(succ));
            steps += 1;
            if steps > 2 * self.capacity {
                // Torn traversal through concurrently recycled nodes:
                // restart from the head.
                prev = 0;
                prev_seq = 0;
                steps = 0;
            }
        }
    }

    fn window_cells(&self, prev: u32, target: u32) -> [usize; 6] {
        let (pn, ps) = if prev == 0 { (HEAD, DUMMY) } else { (node_next(prev), node_seq(prev)) };
        [FREE, pn, ps, node_key(target), node_next(target), node_seq(target)]
    }

    /// Insert `key`; returns `false` if already present or the set is full.
    ///
    /// # Panics
    ///
    /// Panics if `key == KEY_MAX` (reserved sentinel).
    pub fn insert<P: MemPort>(&self, port: &mut P, key: u32) -> bool {
        assert!(key != KEY_MAX, "KEY_MAX is reserved");
        let stm = self.ops.stm();
        loop {
            let (prev, prev_seq, succ, succ_key) = self.locate(port, key);
            if succ != 0 && succ_key == key {
                return false; // already present
            }
            let f = stm.read_cell(port, FREE);
            if f == 0 {
                return false; // full
            }
            if f as usize > self.capacity || f == prev || f == succ {
                continue; // torn speculation
            }
            let cells = self.window_cells(prev, f);
            let params = [
                f as Word,
                succ as Word,
                key as Word,
                prev_seq as Word,
                (prev == 0) as Word,
            ];
            let applied = self.ops.run_planned(port, self.insert_op, &params, &cells, |old| {
                let prev_live = prev == 0 || old[2] == prev_seq;
                old[0] == f && old[1] == succ && prev_live
            });
            if applied {
                return true; // validated and applied
            }
        }
    }

    /// Remove `key`; returns `false` if absent.
    pub fn remove<P: MemPort>(&self, port: &mut P, key: u32) -> bool {
        loop {
            let (prev, prev_seq, victim, victim_key) = self.locate(port, key);
            if victim == 0 || victim_key != key {
                return false;
            }
            if victim == prev {
                continue;
            }
            let cells = self.window_cells(prev, victim);
            let params =
                [victim as Word, key as Word, prev_seq as Word, (prev == 0) as Word];
            let applied = self.ops.run_planned(port, self.remove_op, &params, &cells, |old| {
                let prev_live = prev == 0 || old[2] == prev_seq;
                old[1] == victim && old[3] == key && prev_live
            });
            if applied {
                return true;
            }
        }
    }

    /// Membership test (read-only traversal over committed values).
    pub fn contains<P: MemPort>(&self, port: &mut P, key: u32) -> bool {
        let (_, _, succ, succ_key) = self.locate(port, key);
        succ != 0 && succ_key == key
    }

    /// Snapshot the keys in order (single-threaded/quiescent use).
    pub fn keys<P: MemPort>(&self, port: &mut P) -> Vec<u32> {
        let stm = self.ops.stm();
        let mut out = Vec::new();
        let mut at = stm.read_cell(port, HEAD);
        while at != 0 && (at as usize) <= self.capacity && out.len() <= self.capacity {
            out.push(stm.read_cell(port, node_key(at)));
            at = stm.read_cell(port, node_next(at));
        }
        out
    }

    /// The underlying operations handle.
    pub fn ops(&self) -> &StmOps {
        &self.ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stm_core::machine::host::HostMachine;

    fn make(n_procs: usize, cap: usize) -> (ListSet, HostMachine) {
        let s = ListSet::new(0, n_procs, cap, StmConfig::default());
        let m = HostMachine::new(ListSet::words_needed(n_procs, cap), n_procs);
        let mut port = m.port(0);
        s.init_on(&mut port);
        (s, m)
    }

    #[test]
    fn insert_remove_contains_sequential() {
        let (s, m) = make(1, 8);
        let mut port = m.port(0);
        assert!(!s.contains(&mut port, 5));
        assert!(s.insert(&mut port, 5));
        assert!(s.insert(&mut port, 2));
        assert!(s.insert(&mut port, 9));
        assert!(!s.insert(&mut port, 5), "duplicate rejected");
        assert_eq!(s.keys(&mut port), vec![2, 5, 9]);
        assert!(s.contains(&mut port, 2));
        assert!(s.remove(&mut port, 5));
        assert!(!s.remove(&mut port, 5));
        assert_eq!(s.keys(&mut port), vec![2, 9]);
        assert!(!s.contains(&mut port, 5));
    }

    #[test]
    fn capacity_bound_and_node_recycling() {
        let (s, m) = make(1, 3);
        let mut port = m.port(0);
        assert!(s.insert(&mut port, 1));
        assert!(s.insert(&mut port, 2));
        assert!(s.insert(&mut port, 3));
        assert!(!s.insert(&mut port, 4), "full");
        assert!(s.remove(&mut port, 2));
        assert!(s.insert(&mut port, 4), "node recycled");
        assert_eq!(s.keys(&mut port), vec![1, 3, 4]);
        // Churn through many recycles.
        for k in 10..60 {
            let first = s.keys(&mut port)[0];
            assert!(s.remove(&mut port, first));
            assert!(s.insert(&mut port, k));
        }
        assert_eq!(s.keys(&mut port).len(), 3);
    }

    #[test]
    fn matches_btreeset_reference() {
        let (s, m) = make(1, 16);
        let mut port = m.port(0);
        let mut reference = std::collections::BTreeSet::new();
        let mut x = 777u32;
        for _ in 0..600 {
            x = x.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            let k = x % 24;
            match x % 3 {
                0 => {
                    let want = reference.len() < 16 && !reference.contains(&k);
                    assert_eq!(s.insert(&mut port, k), want, "insert {k}");
                    if want {
                        reference.insert(k);
                    }
                }
                1 => {
                    assert_eq!(s.remove(&mut port, k), reference.remove(&k), "remove {k}");
                }
                _ => {
                    assert_eq!(s.contains(&mut port, k), reference.contains(&k), "contains {k}");
                }
            }
            assert_eq!(s.keys(&mut port), reference.iter().copied().collect::<Vec<_>>());
        }
    }

    #[test]
    fn concurrent_disjoint_inserts_all_land() {
        const PROCS: usize = 4;
        const PER: u32 = 30;
        let (s, m) = make(PROCS, (PROCS as u32 * PER) as usize);
        std::thread::scope(|sc| {
            for p in 0..PROCS {
                let s = s.clone();
                let m = m.clone();
                sc.spawn(move || {
                    let mut port = m.port(p);
                    for i in 0..PER {
                        assert!(s.insert(&mut port, i * PROCS as u32 + p as u32));
                    }
                });
            }
        });
        let mut port = m.port(0);
        let keys = s.keys(&mut port);
        assert_eq!(keys.len(), (PROCS as u32 * PER) as usize);
        assert!(keys.windows(2).all(|w| w[0] < w[1]), "sorted, duplicate-free");
    }

    #[test]
    fn concurrent_insert_remove_churn_stays_consistent() {
        const PROCS: usize = 4;
        let (s, m) = make(PROCS, 32);
        std::thread::scope(|sc| {
            for p in 0..PROCS {
                let s = s.clone();
                let m = m.clone();
                sc.spawn(move || {
                    let mut port = m.port(p);
                    // Each proc owns a disjoint key range and churns it.
                    let base = p as u32 * 100;
                    for round in 0..40 {
                        for k in 0..4 {
                            let _ = s.insert(&mut port, base + k);
                        }
                        if round % 2 == 0 {
                            for k in 0..4 {
                                let _ = s.remove(&mut port, base + k);
                            }
                        }
                    }
                });
            }
        });
        let mut port = m.port(0);
        let keys = s.keys(&mut port);
        assert!(keys.windows(2).all(|w| w[0] < w[1]), "sorted, duplicate-free: {keys:?}");
        // Every surviving key belongs to some proc's range.
        assert!(keys.iter().all(|&k| (k % 100) < 4));
    }

    #[test]
    fn contended_shared_range_churn_conserves_invariants() {
        // All procs fight over the same small key range — maximal window
        // conflicts, recycling, and helping.
        const PROCS: usize = 4;
        let (s, m) = make(PROCS, 8);
        std::thread::scope(|sc| {
            for p in 0..PROCS {
                let s = s.clone();
                let m = m.clone();
                sc.spawn(move || {
                    let mut port = m.port(p);
                    let mut x = p as u32 + 1;
                    for _ in 0..200 {
                        x = x.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
                        let k = x % 6;
                        if x.is_multiple_of(2) {
                            let _ = s.insert(&mut port, k);
                        } else {
                            let _ = s.remove(&mut port, k);
                        }
                    }
                });
            }
        });
        let mut port = m.port(0);
        let keys = s.keys(&mut port);
        assert!(keys.windows(2).all(|w| w[0] < w[1]), "sorted, duplicate-free: {keys:?}");
        assert!(keys.iter().all(|&k| k < 6));
        // Free-list integrity: we can still fill to capacity.
        let mut added = 0;
        for k in 100..200 {
            if s.insert(&mut port, k) {
                added += 1;
            }
        }
        assert_eq!(keys.len() + added, 8, "free list must account for every node");
    }
}
