//! A chained hash map over the growable sharded cell arena (STM only).
//!
//! This is the proof structure for the [`CellArena`] heap: a bucket-array
//! hash map whose entries are 3-cell spans allocated and freed *while
//! transactions run*, demonstrating that the arena's segment-append growth
//! and free-list reuse compose with the static-transaction technique at
//! million-cell scale (the KV service benchmark drives one of these).
//!
//! # Representation
//!
//! * Each bucket is a 2-cell span: a **head pointer** and a **bucket
//!   sequence number**.
//! * Each entry is a 3-cell span `e`: `e` holds the key, `e + 1` the value,
//!   `e + 2` the next pointer.
//! * A pointer value is `entry + 1` (so `0` means nil) — cell values are
//!   `u32`, and cell 0 is a valid arena address.
//!
//! # Concurrency scheme: frozen-bucket speculation
//!
//! Like [`list_set`](crate::list_set), operations traverse over committed
//! reads and commit a short registered program that re-validates. The
//! validation here is per bucket: every structural mutation (link or
//! unlink) increments the bucket's sequence cell in the same transaction,
//! so a commit that observes `(head, seq)` unchanged since the walk began
//! has proof the whole chain was **static** during the walk — whatever the
//! walk saw (presence, absence, the unlink window) is exact. This is what
//! makes arena free/reuse safe: a stale traversal into a freed-and-reused
//! span can never validate, because the unlink that freed it bumped the
//! sequence.
//!
//! Value updates need no freeze: a removed entry's key cell is tagged
//! [`TOMB_KEY`] inside the unlinking transaction (and fresh spans are only
//! keyed inside the linking transaction), so observing `key_cell == key`
//! transactionally proves the entry is *currently linked* in `key`'s
//! bucket — and updating the unique live entry for a key is linearizable
//! no matter how the chain moved around it. Updates therefore commit on a
//! 2-cell plan, the hot path under skewed workloads.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use stm_core::arena::CellArena;
use stm_core::layout::StmLayout;
use stm_core::machine::MemPort;
use stm_core::ops::StmOps;
use stm_core::program::OpCode;
use stm_core::stm::StmConfig;
use stm_core::word::{CellIdx, Word};

/// Cells per map entry: key, value, next.
pub const ENTRY_SPAN: usize = 3;

/// Cells per bucket: head pointer, bucket sequence number.
pub const BUCKET_SPAN: usize = 2;

/// Reserved key tagging an unlinked entry's key cell before its span
/// returns to the arena. [`StmHashMap::insert`] rejects it.
pub const TOMB_KEY: u32 = u32::MAX;

/// Fibonacci multiplier for bucket hashing (odd, so `key ↦ key·c mod 2^32`
/// is a bijection and sequential keys spread across buckets).
const HASH_MUL: u32 = 0x9E37_79B9;

/// A lock-free chained hash map of `u32 → u32` built on [`CellArena`] spans
/// and cached-plan static transactions.
///
/// Cloneable handle: clones share the buckets, the arena, and the length
/// counter. Each operation takes the caller's [`MemPort`], so the same map
/// instance serves many threads (host) or simulated processors.
#[derive(Debug, Clone)]
pub struct StmHashMap {
    ops: StmOps,
    arena: Arc<CellArena>,
    /// Bucket head-pointer cells; each bucket's seq cell is `head + 1`.
    heads: Arc<[CellIdx]>,
    mask: u32,
    /// Committed entry count (host-side, maintained after commits).
    len: Arc<AtomicU64>,
    insert_op: OpCode,
    update_op: OpCode,
    remove_first_op: OpCode,
    remove_mid_op: OpCode,
}

/// One self-consistent view of a bucket, captured by a speculative walk.
struct Walk {
    /// Bucket head-pointer cell.
    hp: CellIdx,
    /// Head pointer and sequence values the walk started from.
    h0: u32,
    s0: u32,
    /// `(prev_ptr_cell, entry, value, next)` when the key was found.
    found: Option<(CellIdx, CellIdx, u32, u32)>,
}

impl StmHashMap {
    /// Build a map with `n_buckets` chains (must be a power of two) over an
    /// arena layout, allocating the bucket spans from `arena` and
    /// zero-initialising them through `port`.
    ///
    /// The map owns a fresh [`StmOps`] over `layout` with its four commit
    /// programs registered; mix other traffic over the same cells through
    /// [`StmHashMap::ops`].
    ///
    /// # Panics
    ///
    /// Panics if `n_buckets` is not a positive power of two, if the arena
    /// was built over a different layout, if `layout.max_locs() < 6`
    /// (the widest commit footprint), or if the arena cannot supply the
    /// bucket spans.
    pub fn new<P: MemPort>(
        layout: StmLayout,
        arena: Arc<CellArena>,
        n_buckets: usize,
        config: StmConfig,
        port: &mut P,
    ) -> Self {
        assert!(n_buckets.is_power_of_two(), "n_buckets must be a power of two");
        assert!(*arena.layout() == layout, "arena and map must share one layout");
        assert!(layout.max_locs() >= 6, "map commits need max_locs >= 6");
        assert!(
            (layout.n_cells() as u64) < u64::from(u32::MAX),
            "pointer encoding needs entry + 1 to fit a u32 cell value"
        );
        let (ops, (insert_op, update_op, remove_first_op, remove_mid_op)) =
            StmOps::with_layout_programs(layout, config, |b| {
                // Data set: [head, seq, e.key, e.value, e.next]
                // Params:   [h0, s0, key, value, e_ptr]
                let insert_op = b.register(
                    "hashmap.insert",
                    |params: &[Word], old: &[u32], new: &mut [u32]| {
                        if old[0] != params[0] as u32 || old[1] != params[1] as u32 {
                            return; // bucket moved since the walk
                        }
                        new[0] = params[4] as u32; // head = new entry
                        new[1] = old[1].wrapping_add(1); // link event
                        new[2] = params[2] as u32; // key
                        new[3] = params[3] as u32; // value
                        new[4] = params[0] as u32; // e.next = old first
                    },
                );
                // Data set: [e.key, e.value]   Params: [key, value]
                let update_op = b.register(
                    "hashmap.update",
                    |params: &[Word], old: &[u32], new: &mut [u32]| {
                        if old[0] != params[0] as u32 {
                            return; // entry unlinked (tombed) or re-keyed
                        }
                        new[1] = params[1] as u32;
                    },
                );
                // Data set: [head, seq, e.key, e.next]   Params: [h0, s0]
                let remove_first_op = b.register(
                    "hashmap.remove_first",
                    |params: &[Word], old: &[u32], new: &mut [u32]| {
                        if old[0] != params[0] as u32 || old[1] != params[1] as u32 {
                            return;
                        }
                        new[0] = old[3]; // head = e.next
                        new[1] = old[1].wrapping_add(1); // unlink event
                        new[2] = TOMB_KEY; // tag before reuse
                    },
                );
                // Data set: [head, seq, prev.next, e.key, e.next]
                // Params:   [h0, s0]
                let remove_mid_op = b.register(
                    "hashmap.remove_mid",
                    |params: &[Word], old: &[u32], new: &mut [u32]| {
                        if old[0] != params[0] as u32 || old[1] != params[1] as u32 {
                            return;
                        }
                        new[2] = old[4]; // prev.next = e.next
                        new[1] = old[1].wrapping_add(1);
                        new[3] = TOMB_KEY;
                    },
                );
                (insert_op, update_op, remove_first_op, remove_mid_op)
            });
        let heads: Vec<CellIdx> = (0..n_buckets)
            .map(|b| {
                let head = arena
                    .alloc_span(b, BUCKET_SPAN)
                    .expect("arena exhausted while allocating bucket spans");
                ops.stm().init_cell(port, head, 0);
                ops.stm().init_cell(port, head + 1, 0);
                head
            })
            .collect();
        StmHashMap {
            ops,
            arena,
            heads: heads.into(),
            mask: (n_buckets - 1) as u32,
            len: Arc::new(AtomicU64::new(0)),
            insert_op,
            update_op,
            remove_first_op,
            remove_mid_op,
        }
    }

    /// The bucket head-pointer cell for `key`.
    fn head_of(&self, key: u32) -> CellIdx {
        self.heads[(key.wrapping_mul(HASH_MUL) & self.mask) as usize]
    }

    /// Speculatively walk `key`'s chain until a self-consistent view is
    /// captured: the bucket sequence is re-read after the walk and must be
    /// unchanged, proving the chain was static for the whole traversal
    /// (so absence and the found window are exact *as of that instant*).
    /// Mutating callers re-validate `(h0, s0)` transactionally at commit.
    fn walk<P: MemPort>(&self, port: &mut P, key: u32) -> Walk {
        let stm = self.ops.stm();
        let n_cells = stm.layout().n_cells();
        let hp = self.head_of(key);
        loop {
            let h0 = stm.read_cell(port, hp);
            let s0 = stm.read_cell(port, hp + 1);
            let mut prev = hp;
            let mut ptr = h0;
            let mut found = None;
            let mut hops = 0usize;
            while ptr != 0 {
                let e = (ptr - 1) as usize;
                if e + ENTRY_SPAN > n_cells || prev == e + 2 {
                    break; // torn view through recycled spans; re-validate
                }
                let k = stm.read_cell(port, e);
                if k == key {
                    let value = stm.read_cell(port, e + 1);
                    let next = stm.read_cell(port, e + 2);
                    found = Some((prev, e, value, next));
                    break;
                }
                prev = e + 2;
                ptr = stm.read_cell(port, prev);
                hops += 1;
                if hops > n_cells {
                    break; // stale-pointer cycle; re-validate and restart
                }
            }
            if stm.read_cell(port, hp + 1) == s0 && stm.read_cell(port, hp) == h0 {
                return Walk { hp, h0, s0, found };
            }
        }
    }

    /// Look up `key`. Transaction-free: the walk's bucket-sequence
    /// re-validation already proves the result was exact at the re-read.
    pub fn get<P: MemPort>(&self, port: &mut P, key: u32) -> Option<u32> {
        self.walk(port, key).found.map(|(_, _, value, _)| value)
    }

    /// Insert or update `key ↦ value`; returns the previous value if the
    /// key was present.
    ///
    /// Updates commit on a cached 2-cell plan; new entries take a 3-cell
    /// span from the arena *outside* the transaction and link it at the
    /// bucket head under the frozen-bucket validation. A span allocated
    /// for a key that turned out to exist is returned to the arena.
    ///
    /// # Panics
    ///
    /// Panics if `key` is [`TOMB_KEY`] or the arena is exhausted.
    pub fn insert<P: MemPort>(&self, port: &mut P, key: u32, value: u32) -> Option<u32> {
        assert!(key != TOMB_KEY, "TOMB_KEY is reserved");
        let mut spare: Option<CellIdx> = None;
        loop {
            let w = self.walk(port, key);
            if let Some((_, e, _, _)) = w.found {
                let cells = [e, e + 1];
                let params = [key as Word, value as Word];
                let old_value = self
                    .ops
                    .run_planned(port, self.update_op, &params, &cells, |old| {
                        (old[0] == key).then(|| old[1])
                    });
                if let Some(old_value) = old_value {
                    if let Some(s) = spare {
                        self.arena.free_span(s, ENTRY_SPAN);
                    }
                    return Some(old_value);
                }
                continue; // entry unlinked under us; re-walk
            }
            let e = match spare {
                Some(e) => e,
                None => {
                    let e = self
                        .arena
                        .alloc_span(port.proc_id(), ENTRY_SPAN)
                        .expect("arena exhausted");
                    spare = Some(e);
                    e
                }
            };
            let cells = [w.hp, w.hp + 1, e, e + 1, e + 2];
            let params = [
                w.h0 as Word,
                w.s0 as Word,
                key as Word,
                value as Word,
                (e + 1) as Word,
            ];
            let applied = self
                .ops
                .run_planned(port, self.insert_op, &params, &cells, |old| {
                    old[0] == w.h0 && old[1] == w.s0
                });
            if applied {
                self.len.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        }
    }

    /// Remove `key`; returns its value if it was present. The entry's span
    /// is returned to the arena after the unlink commits.
    pub fn remove<P: MemPort>(&self, port: &mut P, key: u32) -> Option<u32> {
        loop {
            let w = self.walk(port, key);
            let Some((prev, e, value, _)) = w.found else {
                return None; // exact: the walk validated the bucket seq
            };
            let params = [w.h0 as Word, w.s0 as Word];
            let applied = if prev == w.hp {
                let cells = [w.hp, w.hp + 1, e, e + 2];
                self.ops.run_planned(port, self.remove_first_op, &params, &cells, |old| {
                    old[0] == w.h0 && old[1] == w.s0
                })
            } else {
                let cells = [w.hp, w.hp + 1, prev, e, e + 2];
                self.ops.run_planned(port, self.remove_mid_op, &params, &cells, |old| {
                    old[0] == w.h0 && old[1] == w.s0
                })
            };
            if applied {
                // The bucket was frozen from the walk through the commit,
                // so the walked value is the committed old value.
                self.arena.free_span(e, ENTRY_SPAN);
                self.len.fetch_sub(1, Ordering::Relaxed);
                return Some(value);
            }
        }
    }

    /// Committed entry count.
    pub fn len(&self) -> u64 {
        self.len.load(Ordering::Relaxed)
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of buckets.
    pub fn n_buckets(&self) -> usize {
        self.heads.len()
    }

    /// The arena backing this map.
    pub fn arena(&self) -> &Arc<CellArena> {
        &self.arena
    }

    /// The operations handle (map programs registered), for mixing other
    /// transactions over the same layout.
    pub fn ops(&self) -> &StmOps {
        &self.ops
    }

    /// Visit every committed `(key, value)` pair. **Quiescent only**: reads
    /// cells directly (no validation), so callers must guarantee no
    /// concurrent mutators. Used by accounting checks and the bench gate.
    pub fn for_each_quiesced<P: MemPort>(&self, port: &mut P, mut f: impl FnMut(u32, u32)) {
        let stm = self.ops.stm();
        let n_cells = stm.layout().n_cells();
        for &head in self.heads.iter() {
            let mut ptr = stm.read_cell(port, head);
            let mut hops = 0usize;
            while ptr != 0 {
                let e = (ptr - 1) as usize;
                assert!(e + ENTRY_SPAN <= n_cells, "corrupt chain pointer");
                hops += 1;
                assert!(hops <= n_cells, "chain cycle detected");
                f(stm.read_cell(port, e), stm.read_cell(port, e + 1));
                ptr = stm.read_cell(port, e + 2);
            }
        }
    }

    /// Quiescent integrity check: scans every chain and asserts that the
    /// entry count matches [`StmHashMap::len`], that no key appears twice,
    /// and (when the map owns the arena exclusively) that arena accounting
    /// matches: `live_cells == 2·n_buckets + 3·len`. Returns the scanned
    /// entry count.
    pub fn check_quiesced<P: MemPort>(&self, port: &mut P, exclusive_arena: bool) -> u64 {
        let mut seen = std::collections::HashSet::new();
        let mut count = 0u64;
        self.for_each_quiesced(port, |k, _| {
            assert!(k != TOMB_KEY, "tombed key reachable from a head");
            assert!(seen.insert(k), "duplicate key {k} in chains");
            count += 1;
        });
        assert_eq!(count, self.len(), "scan disagrees with len counter");
        if exclusive_arena {
            assert_eq!(
                self.arena.live_cells() as u64,
                (BUCKET_SPAN * self.heads.len()) as u64 + (ENTRY_SPAN as u64) * count,
                "arena accounting: live != 2·buckets + 3·len"
            );
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use stm_core::machine::host::HostMachine;

    fn setup(
        n_procs: usize,
        n_shards: usize,
        seg_cells: usize,
        max_segments: usize,
        n_buckets: usize,
    ) -> (StmHashMap, HostMachine) {
        let layout = StmLayout::arena(0, n_procs, 8, 0, n_shards, seg_cells, max_segments);
        let arena = Arc::new(CellArena::new(layout));
        let machine = HostMachine::new(layout.end(), n_procs);
        let map = {
            let mut port = machine.port(0);
            StmHashMap::new(layout, arena, n_buckets, StmConfig::default(), &mut port)
        };
        (map, machine)
    }

    #[test]
    fn matches_a_reference_btreemap() {
        let (map, machine) = setup(1, 2, 64, 16, 8);
        let mut port = machine.port(0);
        let mut reference = BTreeMap::new();
        // Deterministic mixed workload, keys colliding across 8 buckets.
        let mut x = 12345u32;
        for i in 0..400u32 {
            x = x.wrapping_mul(1103515245).wrapping_add(12345);
            let key = x % 60;
            match i % 3 {
                0 | 1 => {
                    assert_eq!(map.insert(&mut port, key, i), reference.insert(key, i));
                }
                _ => {
                    assert_eq!(map.remove(&mut port, key), reference.remove(&key));
                }
            }
            assert_eq!(map.get(&mut port, key), reference.get(&key).copied());
        }
        assert_eq!(map.len(), reference.len() as u64);
        let mut scanned = BTreeMap::new();
        map.for_each_quiesced(&mut port, |k, v| {
            scanned.insert(k, v);
        });
        assert_eq!(scanned, reference);
        map.check_quiesced(&mut port, true);
    }

    #[test]
    fn update_returns_old_value_and_allocates_nothing() {
        let (map, machine) = setup(1, 2, 64, 8, 4);
        let mut port = machine.port(0);
        assert_eq!(map.insert(&mut port, 7, 100), None);
        let live_after_first = map.arena().live_cells();
        assert_eq!(map.insert(&mut port, 7, 200), Some(100));
        assert_eq!(map.get(&mut port, 7), Some(200));
        assert_eq!(map.arena().live_cells(), live_after_first);
        assert_eq!(map.remove(&mut port, 7), Some(200));
        assert_eq!(map.arena().live_cells(), BUCKET_SPAN * map.n_buckets());
        assert_eq!(map.remove(&mut port, 7), None);
    }

    #[test]
    fn removed_spans_are_reused() {
        let (map, machine) = setup(1, 2, 16, 4, 2);
        let mut port = machine.port(0);
        // Capacity is 2*16 = 32 cells minus 4 for buckets: 9 entry spans.
        // Insert/remove far more entries than fit at once: reuse must work.
        for round in 0..20u32 {
            for k in 0..8u32 {
                map.insert(&mut port, k, round * 100 + k);
            }
            for k in 0..8u32 {
                assert_eq!(map.remove(&mut port, k), Some(round * 100 + k));
            }
        }
        assert!(map.is_empty());
        map.check_quiesced(&mut port, true);
    }

    #[test]
    fn concurrent_churn_keeps_accounting_exact() {
        let n_procs = 4;
        let (map, machine) = setup(n_procs, 4, 256, 32, 16);
        std::thread::scope(|s| {
            for p in 0..n_procs {
                let map = map.clone();
                let mut port = machine.port(p);
                s.spawn(move || {
                    // Each processor churns its own key range (disjoint) and
                    // a shared contended range.
                    for round in 0..60u32 {
                        let own = 1000 + (p as u32) * 100 + round % 20;
                        let shared = round % 10;
                        map.insert(&mut port, own, round);
                        map.insert(&mut port, shared, (p as u32) << 8 | round);
                        if round % 3 == 0 {
                            map.remove(&mut port, own);
                        }
                        if round % 7 == 0 {
                            map.remove(&mut port, shared);
                        }
                        assert_eq!(map.get(&mut port, 999_999), None);
                    }
                });
            }
        });
        let mut port = machine.port(0);
        let count = map.check_quiesced(&mut port, true);
        assert!(count > 0);
    }

    #[test]
    fn growth_spills_across_segments_without_moving_entries() {
        // Tiny segments force growth: 8 cells/segment, many entries.
        let (map, machine) = setup(1, 2, 8, 64, 2);
        let mut port = machine.port(0);
        for k in 0..50u32 {
            map.insert(&mut port, k, k * 10);
        }
        assert!(map.arena().segments_live() > 2, "growth must have occurred");
        for k in 0..50u32 {
            assert_eq!(map.get(&mut port, k), Some(k * 10), "key {k}");
        }
        map.check_quiesced(&mut port, true);
    }

    #[test]
    #[should_panic(expected = "TOMB_KEY is reserved")]
    fn tomb_key_is_rejected() {
        let (map, machine) = setup(1, 2, 16, 2, 2);
        let mut port = machine.port(0);
        map.insert(&mut port, TOMB_KEY, 1);
    }
}
