//! The priority-queue benchmark: a fixed-capacity binary min-heap whose
//! insert and extract-min are whole-structure atomic operations.
//!
//! This is the evaluation's "large transaction" workload: every operation's
//! data set is the entire heap (size word + all slots), so every pair of
//! operations conflicts. It measures pure protocol overhead at maximum
//! conflict — where Herlihy's whole-object copy and STM's whole-heap
//! ownership acquisition pay their full price, and a simple lock looks best.

use stm_core::machine::MemPort;
use stm_core::ops::StmOps;
use stm_core::program::OpCode;
use stm_core::word::{pack_cell, Addr, Word};
use stm_sync::{HerlihyHandle, HerlihyObject, McsLock, TtasLock};

use crate::Method;

/// In-place binary min-heap over `state = [size, slot0, slot1, ...]`.
///
/// Shared by every method implementation so all five run the same sequential
/// heap code.
pub mod heap {
    /// Insert `v`; returns `false` (unchanged) if the heap is full.
    pub fn insert(state: &mut [u32], v: u32) -> bool {
        let cap = state.len() - 1;
        let size = state[0] as usize;
        if size >= cap {
            return false;
        }
        let mut i = size;
        state[1 + i] = v;
        state[0] = (size + 1) as u32;
        while i > 0 {
            let parent = (i - 1) / 2;
            if state[1 + parent] <= state[1 + i] {
                break;
            }
            state.swap(1 + parent, 1 + i);
            i = parent;
        }
        true
    }

    /// Extract the minimum; `None` (unchanged) if empty.
    pub fn extract_min(state: &mut [u32]) -> Option<u32> {
        let size = state[0] as usize;
        if size == 0 {
            return None;
        }
        let min = state[1];
        state[1] = state[size];
        state[0] = (size - 1) as u32;
        let n = size - 1;
        let mut i = 0;
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut smallest = i;
            if l < n && state[1 + l] < state[1 + smallest] {
                smallest = l;
            }
            if r < n && state[1 + r] < state[1 + smallest] {
                smallest = r;
            }
            if smallest == i {
                break;
            }
            state.swap(1 + i, 1 + smallest);
            i = smallest;
        }
        Some(min)
    }

    /// Check the heap property (for tests).
    pub fn is_valid(state: &[u32]) -> bool {
        let n = state[0] as usize;
        if n > state.len() - 1 {
            return false;
        }
        (1..n).all(|i| state[1 + (i - 1) / 2] <= state[1 + i])
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn insert_extract_sorts() {
            let mut state = vec![0u32; 1 + 16];
            for v in [5u32, 3, 8, 1, 9, 2, 7] {
                assert!(insert(&mut state, v));
                assert!(is_valid(&state));
            }
            let mut out = Vec::new();
            while let Some(v) = extract_min(&mut state) {
                assert!(is_valid(&state));
                out.push(v);
            }
            assert_eq!(out, vec![1, 2, 3, 5, 7, 8, 9]);
        }

        #[test]
        fn full_and_empty_edges() {
            let mut state = vec![0u32; 1 + 2];
            assert_eq!(extract_min(&mut state), None);
            assert!(insert(&mut state, 4));
            assert!(insert(&mut state, 2));
            assert!(!insert(&mut state, 1), "full heap rejects");
            assert_eq!(extract_min(&mut state), Some(2));
        }

        #[test]
        fn duplicates_allowed() {
            let mut state = vec![0u32; 1 + 8];
            for v in [3u32, 3, 3, 1, 1] {
                assert!(insert(&mut state, v));
            }
            let mut out = Vec::new();
            while let Some(v) = extract_min(&mut state) {
                out.push(v);
            }
            assert_eq!(out, vec![1, 1, 3, 3, 3]);
        }
    }
}

/// A fixed-capacity concurrent min-priority-queue built on a chosen
/// [`Method`].
#[derive(Debug, Clone)]
pub struct PrioQueue {
    capacity: usize,
    inner: Inner,
}

#[derive(Debug, Clone)]
enum Inner {
    Stm { ops: StmOps, insert: OpCode, extract: OpCode, cells: Vec<usize> },
    Herlihy { obj: HerlihyObject },
    Ttas { lock: TtasLock, data: Addr },
    Mcs { lock: McsLock, data: Addr },
}

/// A processor-local handle to a [`PrioQueue`].
#[derive(Debug)]
pub struct PrioHandle {
    capacity: usize,
    inner: HandleInner,
}

#[derive(Debug)]
enum HandleInner {
    Stm { ops: StmOps, insert: OpCode, extract: OpCode, cells: Vec<usize> },
    Herlihy { h: HerlihyHandle },
    Ttas { lock: TtasLock, data: Addr },
    Mcs { lock: McsLock, data: Addr },
}

impl PrioQueue {
    /// Shared words needed.
    pub fn words_needed(method: Method, n_procs: usize, capacity: usize) -> usize {
        let obj = 1 + capacity;
        match method {
            Method::Stm | Method::StmNoHelp => {
                StmOps::new(0, obj, n_procs, obj, Method::Stm.stm_config())
                    .stm()
                    .layout()
                    .words_needed()
            }
            Method::Herlihy => HerlihyObject::words_needed(obj, n_procs),
            Method::Ttas => TtasLock::words_needed() + obj,
            Method::Mcs => McsLock::words_needed(n_procs) + obj,
        }
    }

    /// Build a priority queue of `capacity` at `base`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is 0 (or exceeds the STM data-set limit for the
    /// STM methods).
    pub fn new(method: Method, base: Addr, n_procs: usize, capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        let obj = 1 + capacity;
        let inner = match method {
            Method::Stm | Method::StmNoHelp => {
                let (ops, (insert, extract)) =
                    StmOps::with_programs(base, obj, n_procs, obj, method.stm_config(), |b| {
                        let insert =
                            b.register("prio.insert", |params: &[Word], _: &[u32], new: &mut [u32]| {
                                let _ = heap::insert(new, params[0] as u32);
                            });
                        let extract =
                            b.register("prio.extract", |_: &[Word], _: &[u32], new: &mut [u32]| {
                                let _ = heap::extract_min(new);
                            });
                        (insert, extract)
                    });
                Inner::Stm { ops, insert, extract, cells: (0..obj).collect() }
            }
            Method::Herlihy => Inner::Herlihy { obj: HerlihyObject::new(base, obj, n_procs) },
            Method::Ttas => Inner::Ttas { lock: TtasLock::new(base), data: base + 1 },
            Method::Mcs => Inner::Mcs {
                lock: McsLock::new(base, n_procs),
                data: base + McsLock::words_needed(n_procs),
            },
        };
        PrioQueue { capacity, inner }
    }

    /// Queue capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// `(address, word)` pairs pre-loading an empty heap.
    pub fn init_words(&self) -> Vec<(Addr, Word)> {
        let obj = 1 + self.capacity;
        match &self.inner {
            Inner::Stm { ops, .. } => {
                let l = ops.stm().layout();
                (0..obj).map(|i| (l.cell(i), pack_cell(0, 0))).collect()
            }
            Inner::Herlihy { obj: o } => o.initial_words(&vec![0; obj]),
            Inner::Ttas { data, .. } | Inner::Mcs { data, .. } => {
                (0..obj).map(|i| (*data + i, 0)).collect()
            }
        }
    }

    /// Initialize through a port (host machine setup).
    pub fn init_on<P: MemPort>(&self, port: &mut P) {
        for (addr, word) in self.init_words() {
            port.write(addr, word);
        }
    }

    /// A processor-local handle.
    pub fn handle<P: MemPort>(&self, port: &P) -> PrioHandle {
        let inner = match &self.inner {
            Inner::Stm { ops, insert, extract, cells } => HandleInner::Stm {
                ops: ops.clone(),
                insert: *insert,
                extract: *extract,
                cells: cells.clone(),
            },
            Inner::Herlihy { obj } => HandleInner::Herlihy { h: obj.handle(port) },
            Inner::Ttas { lock, data } => HandleInner::Ttas { lock: *lock, data: *data },
            Inner::Mcs { lock, data } => HandleInner::Mcs { lock: *lock, data: *data },
        };
        PrioHandle { capacity: self.capacity, inner }
    }
}

impl PrioHandle {
    /// Insert `v`; returns `false` if the heap was full.
    pub fn insert<P: MemPort>(&mut self, port: &mut P, v: u32) -> bool {
        let cap = self.capacity;
        match &mut self.inner {
            HandleInner::Stm { ops, insert, cells, .. } => {
                let size = ops.run_planned(port, *insert, &[v as Word], cells, |old| old[0]);
                (size as usize) < cap
            }
            HandleInner::Herlihy { h } => h.update(port, |o| {
                let mut state: Vec<u32> = o.iter().map(|&w| w as u32).collect();
                let ok = heap::insert(&mut state, v);
                for (w, s) in o.iter_mut().zip(&state) {
                    *w = *s as Word;
                }
                ok
            }),
            HandleInner::Ttas { lock, data } => {
                let data = *data;
                lock.with(port, |port| lock_heap_op(port, data, cap, |s| heap::insert(s, v)))
            }
            HandleInner::Mcs { lock, data } => {
                let data = *data;
                lock.with(port, |port| lock_heap_op(port, data, cap, |s| heap::insert(s, v)))
            }
        }
    }

    /// Extract the minimum; `None` if empty.
    pub fn extract_min<P: MemPort>(&mut self, port: &mut P) -> Option<u32> {
        let cap = self.capacity;
        match &mut self.inner {
            HandleInner::Stm { ops, extract, cells, .. } => {
                let (size, min) =
                    ops.run_planned(port, *extract, &[], cells, |old| (old[0], old[1]));
                if size == 0 {
                    None
                } else {
                    Some(min)
                }
            }
            HandleInner::Herlihy { h } => h.update(port, |o| {
                let mut state: Vec<u32> = o.iter().map(|&w| w as u32).collect();
                let min = heap::extract_min(&mut state);
                for (w, s) in o.iter_mut().zip(&state) {
                    *w = *s as Word;
                }
                min
            }),
            HandleInner::Ttas { lock, data } => {
                let data = *data;
                lock.with(port, |port| lock_heap_op(port, data, cap, heap::extract_min))
            }
            HandleInner::Mcs { lock, data } => {
                let data = *data;
                lock.with(port, |port| lock_heap_op(port, data, cap, heap::extract_min))
            }
        }
    }

    /// Current number of elements.
    pub fn len<P: MemPort>(&mut self, port: &mut P) -> usize {
        match &mut self.inner {
            HandleInner::Stm { ops, .. } => ops.stm().read_cell(port, 0) as usize,
            HandleInner::Herlihy { h } => h.read(port)[0] as usize,
            HandleInner::Ttas { data, .. } | HandleInner::Mcs { data, .. } => {
                port.read(*data) as usize
            }
        }
    }
}

/// Run a heap operation on the lock-protected word region (read all, apply,
/// write back — under the lock, so plain accesses are safe).
fn lock_heap_op<P: MemPort, R>(
    port: &mut P,
    data: Addr,
    cap: usize,
    op: impl FnOnce(&mut [u32]) -> R,
) -> R {
    let mut state: Vec<u32> = (0..1 + cap).map(|i| port.read(data + i) as u32).collect();
    let before = state.clone();
    let r = op(&mut state);
    for i in 0..1 + cap {
        if state[i] != before[i] {
            port.write(data + i, state[i] as Word);
        }
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use stm_core::machine::host::HostMachine;

    fn make(method: Method, n_procs: usize, cap: usize) -> (PrioQueue, HostMachine) {
        let q = PrioQueue::new(method, 0, n_procs, cap);
        let m = HostMachine::new(PrioQueue::words_needed(method, n_procs, cap), n_procs);
        let mut port = m.port(0);
        q.init_on(&mut port);
        (q, m)
    }

    #[test]
    fn sorts_single_threaded() {
        for method in Method::ALL {
            let (q, m) = make(method, 1, 16);
            let mut port = m.port(0);
            let mut h = q.handle(&port);
            for v in [9u32, 4, 7, 1, 8, 2] {
                assert!(h.insert(&mut port, v), "{method}");
            }
            assert_eq!(h.len(&mut port), 6, "{method}");
            let mut out = Vec::new();
            while let Some(v) = h.extract_min(&mut port) {
                out.push(v);
            }
            assert_eq!(out, vec![1, 2, 4, 7, 8, 9], "{method}");
        }
    }

    #[test]
    fn full_heap_rejects() {
        for method in Method::ALL {
            let (q, m) = make(method, 1, 2);
            let mut port = m.port(0);
            let mut h = q.handle(&port);
            assert!(h.insert(&mut port, 5));
            assert!(h.insert(&mut port, 3));
            assert!(!h.insert(&mut port, 1), "{method}");
            assert_eq!(h.extract_min(&mut port), Some(3), "{method}");
        }
    }

    #[test]
    fn concurrent_inserts_then_drain_on_host() {
        const PROCS: usize = 4;
        const PER: u32 = 50;
        for method in Method::ALL {
            let (q, m) = make(method, PROCS, (PROCS as u32 * PER) as usize);
            std::thread::scope(|s| {
                for p in 0..PROCS {
                    let q = q.clone();
                    let m = m.clone();
                    s.spawn(move || {
                        let mut port = m.port(p);
                        let mut h = q.handle(&port);
                        for i in 0..PER {
                            assert!(h.insert(&mut port, i * PROCS as u32 + p as u32));
                        }
                    });
                }
            });
            let mut port = m.port(0);
            let mut h = q.handle(&port);
            assert_eq!(h.len(&mut port), (PROCS as u32 * PER) as usize, "{method}");
            let mut prev = 0;
            let mut count = 0;
            while let Some(v) = h.extract_min(&mut port) {
                assert!(v >= prev, "{method}: extraction must be ordered");
                prev = v;
                count += 1;
            }
            assert_eq!(count, PROCS as u32 * PER, "{method}");
        }
    }
}
