//! The resource-allocation benchmark.
//!
//! M resources each hold a unit count; an operation atomically acquires one
//! unit from each of k chosen resources — all or nothing — and later releases
//! them. This is the paper's "middle contention" workload: transactions touch
//! k random locations out of M, so conflicts are partial and the methods'
//! ability to exploit disjoint-access parallelism shows.
//!
//! Method notes:
//! * **STM** — acquire/release are k-location static transactions.
//! * **Locks** — fine-grained: one lock per resource, acquired in ascending
//!   index order (deadlock-free), which is the strongest practical lock
//!   baseline for this workload.
//! * **Herlihy** — the whole M-word pool is one object; every operation
//!   copies all of it (the method's inherent cost on larger objects).

use stm_core::machine::MemPort;
use stm_core::ops::StmOps;
use stm_core::program::OpCode;
use stm_core::word::{pack_cell, Addr, Word};
use stm_sync::{HerlihyHandle, HerlihyObject, McsLock, TtasLock};

use crate::Method;

/// Maximum resources per acquire/release (limited by the STM parameter
/// budget).
pub const MAX_K: usize = 8;

/// A pool of M unit-counted resources built on a chosen [`Method`].
#[derive(Debug, Clone)]
pub struct ResourcePool {
    m: usize,
    inner: Inner,
}

#[derive(Debug, Clone)]
enum Inner {
    Stm { ops: StmOps, acquire: OpCode },
    Herlihy { obj: HerlihyObject },
    Ttas { locks: Addr, data: Addr },
    Mcs { locks: Addr, data: Addr, n_procs: usize },
}

/// A processor-local handle to a [`ResourcePool`].
#[derive(Debug)]
pub struct ResourceHandle {
    m: usize,
    inner: HandleInner,
}

#[derive(Debug)]
enum HandleInner {
    Stm { ops: StmOps, acquire: OpCode },
    Herlihy { h: HerlihyHandle },
    Ttas { locks: Addr, data: Addr },
    Mcs { locks: Addr, data: Addr, n_procs: usize },
}

impl ResourcePool {
    /// Shared words needed for `method`, `n_procs`, `m_resources`.
    pub fn words_needed(method: Method, n_procs: usize, m_resources: usize) -> usize {
        match method {
            Method::Stm | Method::StmNoHelp => {
                StmOps::new(0, m_resources, n_procs, MAX_K, Method::Stm.stm_config())
                    .stm()
                    .layout()
                    .words_needed()
            }
            Method::Herlihy => HerlihyObject::words_needed(m_resources, n_procs),
            Method::Ttas => m_resources * (TtasLock::words_needed() + 1),
            Method::Mcs => m_resources * (McsLock::words_needed(n_procs) + 1),
        }
    }

    /// Build a pool of `m_resources` at `base`.
    ///
    /// # Panics
    ///
    /// Panics if `m_resources` is 0.
    pub fn new(method: Method, base: Addr, n_procs: usize, m_resources: usize) -> Self {
        assert!(m_resources > 0, "need at least one resource");
        let inner = match method {
            Method::Stm | Method::StmNoHelp => {
                let (ops, acquire) = StmOps::with_programs(
                    base,
                    m_resources,
                    n_procs,
                    MAX_K,
                    method.stm_config(),
                    |b| {
                        b.register("resource.acquire", |_: &[Word], old: &[u32], new: &mut [u32]| {
                            if old.iter().all(|&v| v > 0) {
                                for (n, &o) in new.iter_mut().zip(old) {
                                    *n = o - 1;
                                }
                            }
                        })
                    },
                );
                Inner::Stm { ops, acquire }
            }
            Method::Herlihy => {
                Inner::Herlihy { obj: HerlihyObject::new(base, m_resources, n_procs) }
            }
            Method::Ttas => Inner::Ttas { locks: base, data: base + m_resources },
            Method::Mcs => Inner::Mcs {
                locks: base,
                data: base + m_resources * McsLock::words_needed(n_procs),
                n_procs,
            },
        };
        ResourcePool { m: m_resources, inner }
    }

    /// Number of resources.
    pub fn n_resources(&self) -> usize {
        self.m
    }

    /// `(address, word)` pairs pre-loading every resource with `units`.
    pub fn init_words(&self, units: u32) -> Vec<(Addr, Word)> {
        match &self.inner {
            Inner::Stm { ops, .. } => {
                let l = ops.stm().layout();
                (0..self.m).map(|i| (l.cell(i), pack_cell(0, units))).collect()
            }
            Inner::Herlihy { obj } => obj.initial_words(&vec![units as Word; self.m]),
            Inner::Ttas { data, .. } | Inner::Mcs { data, .. } => {
                (0..self.m).map(|i| (*data + i, units as Word)).collect()
            }
        }
    }

    /// Initialize through a port (host machine setup).
    pub fn init_on<P: MemPort>(&self, port: &mut P, units: u32) {
        for (addr, word) in self.init_words(units) {
            port.write(addr, word);
        }
    }

    /// A processor-local handle.
    pub fn handle<P: MemPort>(&self, port: &P) -> ResourceHandle {
        let inner = match &self.inner {
            Inner::Stm { ops, acquire } => HandleInner::Stm { ops: ops.clone(), acquire: *acquire },
            Inner::Herlihy { obj } => HandleInner::Herlihy { h: obj.handle(port) },
            Inner::Ttas { locks, data } => HandleInner::Ttas { locks: *locks, data: *data },
            Inner::Mcs { locks, data, n_procs } => {
                HandleInner::Mcs { locks: *locks, data: *data, n_procs: *n_procs }
            }
        };
        ResourceHandle { m: self.m, inner }
    }
}

impl ResourceHandle {
    fn check_indices(&self, indices: &[usize]) {
        assert!(!indices.is_empty() && indices.len() <= MAX_K, "1..={MAX_K} resources per op");
        for (i, &r) in indices.iter().enumerate() {
            assert!(r < self.m, "resource index {r} out of range");
            assert!(!indices[..i].contains(&r), "duplicate resource {r}");
        }
    }

    /// Atomically acquire one unit of each resource in `indices` (distinct).
    /// Returns `false` — acquiring nothing — if any of them had no units.
    pub fn try_acquire<P: MemPort>(&mut self, port: &mut P, indices: &[usize]) -> bool {
        self.check_indices(indices);
        match &mut self.inner {
            HandleInner::Stm { ops, acquire } => {
                ops.run_planned(port, *acquire, &[], indices, |old| old.iter().all(|&v| v > 0))
            }
            HandleInner::Herlihy { h } => h.update(port, |o| {
                if indices.iter().all(|&r| o[r] > 0) {
                    for &r in indices {
                        o[r] -= 1;
                    }
                    true
                } else {
                    false
                }
            }),
            HandleInner::Ttas { locks, data } => {
                let (locks, data) = (*locks, *data);
                let mut sorted = indices.to_vec();
                sorted.sort_unstable();
                for &r in &sorted {
                    TtasLock::new(locks + r).lock(port);
                }
                let ok = indices.iter().all(|&r| port.read(data + r) > 0);
                if ok {
                    for &r in indices {
                        let v = port.read(data + r);
                        port.write(data + r, v - 1);
                    }
                }
                for &r in &sorted {
                    TtasLock::new(locks + r).unlock(port);
                }
                ok
            }
            HandleInner::Mcs { locks, data, n_procs } => {
                let (locks, data, n_procs) = (*locks, *data, *n_procs);
                let stride = McsLock::words_needed(n_procs);
                let mut sorted = indices.to_vec();
                sorted.sort_unstable();
                for &r in &sorted {
                    McsLock::new(locks + r * stride, n_procs).lock(port);
                }
                let ok = indices.iter().all(|&r| port.read(data + r) > 0);
                if ok {
                    for &r in indices {
                        let v = port.read(data + r);
                        port.write(data + r, v - 1);
                    }
                }
                for &r in &sorted {
                    McsLock::new(locks + r * stride, n_procs).unlock(port);
                }
                ok
            }
        }
    }

    /// Atomically release one unit of each resource in `indices`.
    pub fn release<P: MemPort>(&mut self, port: &mut P, indices: &[usize]) {
        self.check_indices(indices);
        match &mut self.inner {
            HandleInner::Stm { ops, .. } => {
                let deltas = vec![1u32; indices.len()];
                let _ = ops.fetch_add_many(port, indices, &deltas);
            }
            HandleInner::Herlihy { h } => h.update(port, |o| {
                for &r in indices {
                    o[r] += 1;
                }
            }),
            HandleInner::Ttas { locks, data } => {
                let (locks, data) = (*locks, *data);
                let mut sorted = indices.to_vec();
                sorted.sort_unstable();
                for &r in &sorted {
                    TtasLock::new(locks + r).lock(port);
                }
                for &r in indices {
                    let v = port.read(data + r);
                    port.write(data + r, v + 1);
                }
                for &r in &sorted {
                    TtasLock::new(locks + r).unlock(port);
                }
            }
            HandleInner::Mcs { locks, data, n_procs } => {
                let (locks, data, n_procs) = (*locks, *data, *n_procs);
                let stride = McsLock::words_needed(n_procs);
                let mut sorted = indices.to_vec();
                sorted.sort_unstable();
                for &r in &sorted {
                    McsLock::new(locks + r * stride, n_procs).lock(port);
                }
                for &r in indices {
                    let v = port.read(data + r);
                    port.write(data + r, v + 1);
                }
                for &r in &sorted {
                    McsLock::new(locks + r * stride, n_procs).unlock(port);
                }
            }
        }
    }

    /// Read all unit counts (consistent for STM/Herlihy when quiescent).
    pub fn read_all<P: MemPort>(&mut self, port: &mut P) -> Vec<u32> {
        match &mut self.inner {
            HandleInner::Stm { ops, .. } => {
                (0..self.m).map(|r| ops.stm().read_cell(port, r)).collect()
            }
            HandleInner::Herlihy { h } => h.read(port).iter().map(|&w| w as u32).collect(),
            HandleInner::Ttas { data, .. } | HandleInner::Mcs { data, .. } => {
                let data = *data;
                (0..self.m).map(|r| port.read(data + r) as u32).collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stm_core::machine::host::HostMachine;

    fn make(method: Method, n_procs: usize, m: usize, units: u32) -> (ResourcePool, HostMachine) {
        let pool = ResourcePool::new(method, 0, n_procs, m);
        let machine = HostMachine::new(ResourcePool::words_needed(method, n_procs, m), n_procs);
        let mut port = machine.port(0);
        pool.init_on(&mut port, units);
        (pool, machine)
    }

    #[test]
    fn acquire_release_roundtrip() {
        for method in Method::ALL {
            let (pool, m) = make(method, 1, 8, 2);
            let mut port = m.port(0);
            let mut h = pool.handle(&port);
            assert!(h.try_acquire(&mut port, &[1, 3, 5]), "{method}");
            assert_eq!(h.read_all(&mut port), vec![2, 1, 2, 1, 2, 1, 2, 2], "{method}");
            h.release(&mut port, &[1, 3, 5]);
            assert_eq!(h.read_all(&mut port), vec![2; 8], "{method}");
        }
    }

    #[test]
    fn acquire_is_all_or_nothing() {
        for method in Method::ALL {
            let (pool, m) = make(method, 1, 4, 1);
            let mut port = m.port(0);
            let mut h = pool.handle(&port);
            assert!(h.try_acquire(&mut port, &[0]), "{method}");
            // resource 0 is now exhausted: the pair op must take nothing.
            assert!(!h.try_acquire(&mut port, &[0, 2]), "{method}");
            assert_eq!(h.read_all(&mut port), vec![0, 1, 1, 1], "{method}");
        }
    }

    #[test]
    fn concurrent_acquire_release_conserves_units_on_host() {
        const PROCS: usize = 4;
        const ROUNDS: usize = 150;
        for method in Method::ALL {
            let (pool, m) = make(method, PROCS, 6, 3);
            std::thread::scope(|s| {
                for p in 0..PROCS {
                    let pool = pool.clone();
                    let m = m.clone();
                    s.spawn(move || {
                        let mut port = m.port(p);
                        let mut h = pool.handle(&port);
                        for i in 0..ROUNDS {
                            let a = (p + i) % 6;
                            let b = (p + i + 2) % 6;
                            let c = (p + i + 4) % 6;
                            let set = [a, b, c];
                            if h.try_acquire(&mut port, &set) {
                                h.release(&mut port, &set);
                            }
                        }
                    });
                }
            });
            let mut port = m.port(0);
            let mut h = pool.handle(&port);
            let total: u32 = h.read_all(&mut port).iter().sum();
            assert_eq!(total, 18, "{method}: units must be conserved");
        }
    }

    #[test]
    #[should_panic(expected = "duplicate resource")]
    fn duplicate_indices_panic() {
        let (pool, m) = make(Method::Stm, 1, 4, 1);
        let mut port = m.port(0);
        let mut h = pool.handle(&port);
        let _ = h.try_acquire(&mut port, &[1, 1]);
    }
}
