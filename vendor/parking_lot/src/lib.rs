//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors the *API subset it actually uses* — `Mutex`,
//! `MutexGuard`, and `Condvar` with `parking_lot`'s guard-based calling
//! convention — implemented over `std::sync`. Poisoning is ignored (as
//! `parking_lot` does by construction): a panicking critical section does not
//! poison the lock.

use std::ops::{Deref, DerefMut};
use std::sync;

/// A mutual-exclusion lock with `parking_lot`'s panic-transparent semantics.
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can temporarily take ownership of the
    // underlying std guard (std's wait consumes and returns it).
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Create a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the calling thread until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard { inner: Some(self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)) }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken during wait")
    }
}

/// A condition variable usable with [`MutexGuard`].
#[derive(Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// Atomically release the guarded lock and block until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard taken during wait");
        let reacquired =
            self.0.wait(std_guard).unwrap_or_else(sync::PoisonError::into_inner);
        guard.inner = Some(reacquired);
    }

    /// Wake one waiting thread.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake all waiting threads.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_roundtrip_and_condvar_wakeup() {
        let pair = Arc::new((Mutex::new(0u32), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            while *g == 0 {
                cv.wait(&mut g);
            }
            *g + 1
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = 41;
            cv.notify_all();
        }
        assert_eq!(t.join().unwrap(), 42);
    }

    #[test]
    fn panic_does_not_poison() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }
}
