//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! provides the subset of `rand 0.8`'s API the workspace uses: the
//! [`SeedableRng`]/[`RngCore`]/[`Rng`] traits, integer `gen_range` over
//! half-open and inclusive ranges, and [`rngs::SmallRng`] (xoshiro256**,
//! seeded via splitmix64 — deterministic on every platform).
//!
//! The statistical-quality and distribution machinery of the real crate is
//! intentionally absent; uniformity is "good enough for seeded simulation
//! jitter", which is all this workspace asks of it.

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Deterministic construction of an RNG from a seed.
pub trait SeedableRng: Sized {
    /// Build the generator from a 64-bit seed (expanded via splitmix64).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range-sampling extension methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniformly sample from `range` (empty ranges panic).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Bernoulli trial with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        ((self.next_u64() >> 11) as f64) < p * (1u64 << 53) as f64
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that [`Rng::gen_range`] can sample a `T` from.
pub trait SampleRange<T> {
    /// Draw one uniform sample using `rng`.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain: every word is a valid sample.
                    return start.wrapping_add(rng.next_u64() as $t);
                }
                start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256**).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            SmallRng {
                s: [
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..=1000), b.gen_range(0u64..=1000));
        }
        let mut c = SmallRng::seed_from_u64(43);
        let same = (0..32).all(|_| a.gen_range(0u32..100) == c.gen_range(0u32..100));
        assert!(!same, "different seeds should diverge");
    }

    #[test]
    fn ranges_stay_in_bounds_and_cover() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut seen = [false; 5];
        for _ in 0..500 {
            let v = rng.gen_range(0usize..5);
            seen[v] = true;
            assert!(v < 5);
            let w = rng.gen_range(10u64..=12);
            assert!((10..=12).contains(&w));
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(3);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
