//! Offline stand-in for `serde_json`, exposing the subset this workspace
//! uses: the [`Value`] tree, [`json!`]-free construction via `From` impls,
//! a strict parser ([`from_str`]) and a serializer ([`to_string`] /
//! [`to_string_pretty`]).
//!
//! The build environment has no crates.io access; like the other crates
//! under `vendor/`, this is a minimal, dependency-free reimplementation of
//! the public API surface actually consumed by the workspace (Perfetto
//! trace export and `BENCH_stm.json`), not a fork of the real crate.

use std::collections::BTreeMap;
use std::fmt;

/// Maximum nesting depth accepted by the parser (arrays + objects).
const MAX_DEPTH: usize = 128;

/// A parsed or constructed JSON value.
///
/// Numbers are stored as `f64` (ample for the cycle counts and rates this
/// workspace serializes; integers up to 2^53 round-trip exactly). Objects
/// preserve insertion order, matching real `serde_json`'s
/// `preserve_order` behaviour, so exported traces keep a stable field
/// layout.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (stored as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object: key/value pairs in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member of an object by key (`None` for non-objects/missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Element of an array by index.
    pub fn get_index(&self, idx: usize) -> Option<&Value> {
        match self {
            Value::Array(a) => a.get(idx),
            _ => None,
        }
    }

    /// `&str` view of a string value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number as `f64`, if this is a `Number`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as `u64`, if it is an exact non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The number as `i64`, if it is an exact integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n)
                if n.fract() == 0.0 && *n >= i64::MIN as f64 && *n <= i64::MAX as f64 =>
            {
                Some(*n as i64)
            }
            _ => None,
        }
    }

    /// The elements, if this is an `Array`.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The key/value pairs, if this is an `Object`.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Whether this is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    /// Object member access; yields `Null` for non-objects/missing keys
    /// (matching real `serde_json`).
    fn index(&self, key: &str) -> &Value {
        const NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    /// Array element access; yields `Null` when out of range.
    fn index(&self, idx: usize) -> &Value {
        const NULL: Value = Value::Null;
        self.get_index(idx).unwrap_or(&NULL)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<f64> for Value {
    fn from(n: f64) -> Self {
        Value::Number(n)
    }
}
macro_rules! from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(n: $t) -> Self {
                Value::Number(n as f64)
            }
        }
    )*};
}
from_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_owned())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}
impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        v.map(Into::into).unwrap_or(Value::Null)
    }
}
impl From<BTreeMap<String, Value>> for Value {
    fn from(m: BTreeMap<String, Value>) -> Self {
        Value::Object(m.into_iter().collect())
    }
}

/// A JSON parse or serialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
    /// Byte offset of the error in the input (parse errors only).
    pub offset: usize,
}

impl Error {
    fn new(msg: impl Into<String>, offset: usize) -> Self {
        Error { msg: msg.into(), offset }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.offset)
    }
}

impl std::error::Error for Error {}

/// Parse a complete JSON document.
///
/// # Errors
///
/// Returns [`Error`] on malformed input, trailing garbage, or nesting
/// deeper than an internal cap.
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new("trailing characters", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!("expected '{}'", b as char), self.pos))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error::new(format!("expected `{lit}`"), self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(Error::new("nesting too deep", self.pos));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(Error::new(format!("unexpected character '{}'", c as char), self.pos)),
            None => Err(Error::new("unexpected end of input", self.pos)),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new("expected ',' or ']'", self.pos)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(members));
                }
                _ => return Err(Error::new("expected ',' or '}'", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string", self.pos)),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if self.peek() != Some(b'\\') {
                                    return Err(Error::new("lone high surrogate", self.pos));
                                }
                                self.pos += 1;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::new("invalid low surrogate", self.pos));
                                }
                                let cp =
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(cp)
                                    .ok_or_else(|| Error::new("invalid code point", self.pos))?
                            } else {
                                char::from_u32(hi)
                                    .ok_or_else(|| Error::new("invalid code point", self.pos))?
                            };
                            out.push(c);
                            continue; // hex4 advanced pos itself
                        }
                        _ => return Err(Error::new("invalid escape", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => {
                    return Err(Error::new("unescaped control character", self.pos))
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (the input is &str, so it's valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let ch = s.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::new("truncated \\u escape", self.pos));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::new("invalid \\u escape", self.pos))?;
        let v = u32::from_str_radix(s, 16)
            .map_err(|_| Error::new("invalid \\u escape", self.pos))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        s.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| Error::new("invalid number", start))
    }
}

/// Serialize `value` compactly.
///
/// # Errors
///
/// Returns [`Error`] for non-finite numbers (JSON has no NaN/Infinity).
pub fn to_string(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, value, None, 0)?;
    Ok(out)
}

/// Serialize `value` with two-space indentation.
///
/// # Errors
///
/// Same as [`to_string`].
pub fn to_string_pretty(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, value, Some(2), 0)?;
    Ok(out)
}

fn write_value(
    out: &mut String,
    value: &Value,
    indent: Option<usize>,
    level: usize,
) -> Result<(), Error> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => {
            if !n.is_finite() {
                return Err(Error::new("non-finite number", 0));
            }
            if n.fract() == 0.0 && n.abs() < 1e15 {
                // Integer-valued: serialize without a decimal point, so
                // cycle counts round-trip as the integers they are.
                out.push_str(&format!("{}", *n as i64));
            } else {
                out.push_str(&format!("{n}"));
            }
        }
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1)?;
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(members) => {
            if members.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (k, v)) in members.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, v, indent, level + 1)?;
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(n) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', n * level));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(from_str("null").unwrap(), Value::Null);
        assert_eq!(from_str(" true ").unwrap(), Value::Bool(true));
        assert_eq!(from_str("false").unwrap(), Value::Bool(false));
        assert_eq!(from_str("42").unwrap(), Value::Number(42.0));
        assert_eq!(from_str("-1.5e2").unwrap(), Value::Number(-150.0));
        assert_eq!(from_str("\"hi\"").unwrap(), Value::String("hi".into()));
    }

    #[test]
    fn parses_structures_and_preserves_order() {
        let v = from_str(r#"{"b": [1, 2, {"x": null}], "a": "y"}"#).unwrap();
        assert_eq!(v["b"][2]["x"], Value::Null);
        assert_eq!(v["a"].as_str(), Some("y"));
        let keys: Vec<&str> =
            v.as_object().unwrap().iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["b", "a"], "insertion order preserved");
    }

    #[test]
    fn parses_escapes_including_surrogate_pairs() {
        let v = from_str(r#""a\n\t\"\\ A 😀""#).unwrap();
        assert_eq!(v.as_str(), Some("a\n\t\"\\ A 😀"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str("").is_err());
        assert!(from_str("tru").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("{\"a\" 1}").is_err());
        assert!(from_str("1 2").is_err());
        assert!(from_str(&("[".repeat(500) + &"]".repeat(500))).is_err());
    }

    #[test]
    fn roundtrips() {
        let src = r#"{"name":"P0","args":{"n":3},"list":[1,2.5,true,null,"x\"y"]}"#;
        let v = from_str(src).unwrap();
        let re = to_string(&v).unwrap();
        assert_eq!(from_str(&re).unwrap(), v, "parse∘print is identity");
        assert_eq!(re, src, "compact output matches canonical form");
    }

    #[test]
    fn integers_serialize_without_decimal_point() {
        assert_eq!(to_string(&Value::Number(1000.0)).unwrap(), "1000");
        assert_eq!(to_string(&Value::Number(2.5)).unwrap(), "2.5");
        assert_eq!(to_string(&Value::from(u32::MAX)).unwrap(), "4294967295");
    }

    #[test]
    fn pretty_print_is_reparsable() {
        let v = from_str(r#"{"a":[1,{"b":[]}],"c":{}}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(from_str(&pretty).unwrap(), v);
    }

    #[test]
    fn accessors() {
        let v = from_str(r#"{"n": 3, "neg": -2, "f": 0.5}"#).unwrap();
        assert_eq!(v["n"].as_u64(), Some(3));
        assert_eq!(v["n"].as_i64(), Some(3));
        assert_eq!(v["neg"].as_u64(), None);
        assert_eq!(v["neg"].as_i64(), Some(-2));
        assert_eq!(v["f"].as_u64(), None);
        assert_eq!(v["f"].as_f64(), Some(0.5));
        assert_eq!(v["missing"], Value::Null);
        assert!(v["missing"].is_null());
        assert_eq!(v[0], Value::Null, "index into non-array yields null");
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from("s"), Value::String("s".into()));
        assert_eq!(Value::from(vec![1u64, 2]), from_str("[1,2]").unwrap());
        assert_eq!(Value::from(Option::<u32>::None), Value::Null);
        assert_eq!(Value::from(true), Value::Bool(true));
    }
}
