//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the subset of proptest's surface the workspace's property
//! tests use:
//!
//! * the [`proptest!`] macro with both binding forms (`x: Type` and
//!   `x in strategy`) and the `#![proptest_config(..)]` header,
//! * [`Strategy`](strategy::Strategy) with `prop_map`, `prop_filter_map`,
//!   and `boxed`; strategies for integer/bool ranges, tuples, and
//!   [`collection::vec`]; [`prop_oneof!`] unions; [`arbitrary::any`],
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`.
//!
//! Differences from real proptest, deliberately accepted: no shrinking (a
//! failing case prints its generated inputs instead), no persisted failure
//! regressions, and a deterministic per-test RNG (seeded from the test's
//! name) so failures reproduce across runs without a seed file.

/// Run-time configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The deterministic random source driving generation.
pub mod test_runner {
    /// A splitmix64 generator; deterministic per seed.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed deterministically from a test's name.
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `0..bound` (`bound > 0`).
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            self.next_u64() % bound
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// Something that can generate values of an associated type.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Transform with `f`, regenerating when `f` returns `None`
        /// (`whence` labels the filter in the give-up panic).
        fn prop_filter_map<O, F: Fn(Self::Value) -> Option<O>>(
            self,
            whence: &'static str,
            f: F,
        ) -> FilterMap<Self, F>
        where
            Self: Sized,
        {
            FilterMap { inner: self, f, whence }
        }

        /// Type-erase this strategy (needed by [`prop_oneof!`]).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// Object-safe core used by [`BoxedStrategy`].
    trait StrategyObj {
        type Value;
        fn generate_obj(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy> StrategyObj for S {
        type Value = S::Value;
        fn generate_obj(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<V>(Rc<dyn StrategyObj<Value = V>>);

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            self.0.generate_obj(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_filter_map`].
    pub struct FilterMap<S, F> {
        inner: S,
        f: F,
        whence: &'static str,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            for _ in 0..1000 {
                if let Some(v) = (self.f)(self.inner.generate(rng)) {
                    return v;
                }
            }
            panic!("prop_filter_map({:?}) rejected 1000 candidates in a row", self.whence);
        }
    }

    /// Uniform choice between boxed strategies (built by [`prop_oneof!`]).
    pub struct Union<V> {
        arms: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// A union over `arms` (must be non-empty).
        pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "cannot sample empty range");
                    let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                    if span == 0 {
                        return start.wrapping_add(rng.next_u64() as $t);
                    }
                    start.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }
}

/// `any::<T>()` and the [`Arbitrary`] trait behind it.
pub mod arbitrary {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draw one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    /// The canonical strategy for `T`, biased toward edge values
    /// (0/1/MAX) about 1 time in 8 like real proptest's edge weighting.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    // Edge bias: hit the boundary values regularly.
                    match rng.below(8) {
                        0 => match rng.below(3) {
                            0 => 0,
                            1 => 1,
                            _ => <$t>::MAX,
                        },
                        _ => rng.next_u64() as $t,
                    }
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.below(2) == 1
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Length specification accepted by [`vec`]: an exact `usize` or a
    /// half-open `Range<usize>`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec length range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A strategy for `Vec`s of `element` values with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The glob-imported prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Assert inside a property; panics (no shrink-friendly error channel here).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Inequality assert inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Define property tests. Supports the `#![proptest_config(..)]` header and
/// both parameter forms: `name: Type` (uses `any::<Type>()`) and
/// `name in strategy`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Internal: expand each `fn` item inside [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr) $(#[$attr:meta])* fn $name:ident($($params:tt)*) $body:block $($rest:tt)*) => {
        $(#[$attr])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            for __case in 0..__cfg.cases {
                $crate::__proptest_case!(__rng, __case, ($($params)*) {} $body);
            }
        }
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
}

/// Internal: bind one case's parameters, run the body, report on failure.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_case {
    ($rng:ident, $case:ident, () { $($done:ident)* } $body:block) => {
        let __result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| $body));
        if let ::std::result::Result::Err(__payload) = __result {
            ::std::eprint!("proptest case {} failed with inputs:", $case);
            $(::std::eprint!(" {} = {:?};", stringify!($done), &$done);)*
            ::std::eprintln!();
            ::std::panic::resume_unwind(__payload);
        }
    };
    ($rng:ident, $case:ident, ($x:ident : $t:ty, $($rest:tt)*) { $($done:ident)* } $body:block) => {
        let $x: $t =
            $crate::strategy::Strategy::generate(&$crate::arbitrary::any::<$t>(), &mut $rng);
        $crate::__proptest_case!($rng, $case, ($($rest)*) { $($done)* $x } $body);
    };
    ($rng:ident, $case:ident, ($x:ident : $t:ty) { $($done:ident)* } $body:block) => {
        $crate::__proptest_case!($rng, $case, ($x : $t,) { $($done)* } $body);
    };
    ($rng:ident, $case:ident, ($x:ident in $s:expr, $($rest:tt)*) { $($done:ident)* } $body:block) => {
        let $x = $crate::strategy::Strategy::generate(&($s), &mut $rng);
        $crate::__proptest_case!($rng, $case, ($($rest)*) { $($done)* $x } $body);
    };
    ($rng:ident, $case:ident, ($x:ident in $s:expr) { $($done:ident)* } $body:block) => {
        $crate::__proptest_case!($rng, $case, ($x in $s,) { $($done)* } $body);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn mixed_binding_forms(a in 0usize..10, b: u16, flag: bool) {
            prop_assert!(a < 10);
            let _ = (b, flag);
        }

        #[test]
        fn vec_lengths_respect_range(v in crate::collection::vec(0u32..5, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn oneof_map_and_filter_map_compose(
            x in prop_oneof![
                (0u32..50).prop_map(|v| v * 2),
                (0u32..50, 0u32..2).prop_filter_map("evens", |(v, _)| Some(v * 2)),
            ]
        ) {
            prop_assert_eq!(x % 2, 0);
            prop_assert!(x < 100);
        }
    }

    #[test]
    fn exact_vec_length() {
        use crate::strategy::Strategy;
        let mut rng = crate::test_runner::TestRng::from_name("exact");
        let s = crate::collection::vec(1u32..20, 3);
        for _ in 0..20 {
            assert_eq!(s.generate(&mut rng).len(), 3);
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        use crate::strategy::Strategy;
        let s = crate::collection::vec(0u64..1000, 4..9);
        let mut a = crate::test_runner::TestRng::from_name("same");
        let mut b = crate::test_runner::TestRng::from_name("same");
        for _ in 0..10 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
