//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! provides just enough of criterion's API for the workspace's benches to
//! compile and produce useful numbers: `Criterion` with
//! `bench_function`/`benchmark_group`, `Bencher::iter`/`iter_custom`,
//! `BenchmarkId`, and the `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement is deliberately simple: a warm-up call, then `sample_size`
//! timed samples whose per-iteration mean and minimum are printed. No
//! statistical analysis, no HTML reports, no comparison against saved
//! baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of the standard optimization barrier.
pub use std::hint::black_box;

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Total time budget for the timed samples of one benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Time spent warming up before measuring.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Run one benchmark under `id`.
    pub fn bench_function(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) {
        run_bench(self, id, &mut f);
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmark `f` against `input` under `group/id`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.0);
        run_bench(self.criterion, &full, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Finish the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id that is just the parameter's `Display` form.
    pub fn from_parameter(p: impl Display) -> Self {
        BenchmarkId(p.to_string())
    }

    /// A `name/parameter` id.
    pub fn new(name: impl Into<String>, p: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), p))
    }
}

/// Passed to the benchmark closure to drive timed iterations.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `f` over this sample's iteration count.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }

    /// Custom timing: `f` receives the iteration count and returns the
    /// elapsed time it measured itself.
    pub fn iter_custom(&mut self, mut f: impl FnMut(u64) -> Duration) {
        self.elapsed = f(self.iters);
    }
}

fn time_once(f: &mut dyn FnMut(&mut Bencher), iters: u64) -> Duration {
    let mut b = Bencher { iters, elapsed: Duration::ZERO };
    f(&mut b);
    b.elapsed
}

/// `d / iters` without the `Duration / u32` width limit: iteration counts
/// can exceed `u32::MAX` when the benched closure folds to constant time.
fn per_iter_of(d: Duration, iters: u64) -> Duration {
    let nanos = d.as_nanos() / u128::from(iters.max(1));
    Duration::from_nanos(nanos.min(u128::from(u64::MAX)) as u64)
}

fn run_bench(c: &Criterion, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
    // Warm up and estimate the per-iteration cost.
    let mut iters = 1u64;
    let warm_start = Instant::now();
    let mut per_iter = Duration::from_nanos(1);
    while warm_start.elapsed() < c.warm_up_time {
        let d = time_once(f, iters);
        per_iter = per_iter_of(d, iters).max(Duration::from_nanos(1));
        if d < Duration::from_millis(1) {
            iters = iters.saturating_mul(2);
        }
    }
    // Size samples so the whole measurement fits the time budget.
    let budget_per_sample = c.measurement_time / c.sample_size as u32;
    let iters_per_sample =
        (budget_per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, u64::MAX as u128)
            as u64;
    let mut total = Duration::ZERO;
    let mut min = Duration::MAX;
    for _ in 0..c.sample_size {
        let d = time_once(f, iters_per_sample);
        let per = per_iter_of(d, iters_per_sample);
        total += d;
        min = min.min(per);
    }
    let mean = per_iter_of(total, (c.sample_size as u64).saturating_mul(iters_per_sample));
    println!(
        "bench {id:<40} mean {mean:>12?}  min {min:>12?}  ({} samples x {iters_per_sample} iters)",
        c.sample_size
    );
}

/// Declare a group of benchmark functions; both the simple and the
/// `name/config/targets` forms are supported.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_prints() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(5));
        let mut count = 0u64;
        c.bench_function("smoke/add", |b| b.iter(|| count = count.wrapping_add(1)));
        assert!(count > 0);
    }

    #[test]
    fn group_and_iter_custom() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(2));
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::from_parameter(3), &3u64, |b, &x| {
            b.iter_custom(|iters| {
                let start = Instant::now();
                let mut acc = 0u64;
                for _ in 0..iters {
                    acc = acc.wrapping_add(x);
                }
                black_box(acc);
                start.elapsed()
            })
        });
        group.finish();
    }
}
