//! The benchmark structures under concurrency on the simulated machines,
//! across many seeded schedules: linearizability-style invariants per
//! structure, for every method the evaluation compares.

use stm_core::word::Word;
use stm_sim::arch::{BusModel, MeshModel};
use stm_sim::engine::{SimConfig, SimPort, SimReport, Simulation};
use stm_sim::explore::sweep;
use stm_structures::counter::Counter;
use stm_structures::prio::PrioQueue;
use stm_structures::queue::FifoQueue;
use stm_structures::resource::ResourcePool;
use stm_structures::Method;

const SEEDS: u64 = 6;

fn run_sim<B>(
    n_words: usize,
    init: Vec<(usize, Word)>,
    seed: u64,
    procs: usize,
    body: impl FnMut(usize) -> B,
) -> SimReport
where
    B: FnOnce(SimPort) + Send,
{
    Simulation::new(
        SimConfig { n_words, seed, jitter: 4, max_cycles: 1 << 33, init, ..Default::default() },
        BusModel::for_procs(procs),
    )
    .run(procs, body)
}

/// Decode any structure's state by replaying a reader on the final image.
fn replay<R: Send + 'static>(
    memory: &[Word],
    read: impl FnOnce(&mut SimPort) -> R + Send + 'static,
) -> R {
    let config = SimConfig {
        n_words: memory.len(),
        init: memory.iter().copied().enumerate().collect(),
        ..Default::default()
    };
    let out: std::sync::Arc<std::sync::Mutex<Option<R>>> =
        std::sync::Arc::new(std::sync::Mutex::new(None));
    let o2 = std::sync::Arc::clone(&out);
    let mut read = Some(read);
    let _ = Simulation::new(config, stm_sim::arch::UniformModel::new(1, 1)).run(1, move |_| {
        let o2 = std::sync::Arc::clone(&o2);
        let read = read.take().expect("single processor");
        move |mut port: SimPort| {
            *o2.lock().unwrap() = Some(read(&mut port));
        }
    });
    let mut guard = out.lock().unwrap();
    guard.take().expect("reader ran")
}

#[test]
fn counter_exact_for_every_method_on_sim() {
    const PROCS: usize = 4;
    const PER: u32 = 25;
    for method in Method::ALL {
        let counter = Counter::new(method, 0, PROCS);
        sweep(
            SEEDS,
            |seed| {
                let counter = counter.clone();
                run_sim(
                    Counter::words_needed(method, PROCS),
                    counter.init_words(0),
                    seed,
                    PROCS,
                    |_p| {
                        let counter = counter.clone();
                        move |mut port: SimPort| {
                            let mut h = counter.handle(&port);
                            for _ in 0..PER {
                                h.increment(&mut port);
                            }
                        }
                    },
                )
            },
            |seed, report| {
                let counter = counter.clone();
                let value = replay(&report.memory, move |port| {
                    let mut h = counter.handle(port);
                    h.read(port)
                });
                assert_eq!(value, PROCS as u32 * PER, "{method} seed {seed}");
            },
        );
    }
}

#[test]
fn queue_spsc_fifo_on_sim_all_methods() {
    const ITEMS: u32 = 40;
    for method in Method::PAPER {
        let q = FifoQueue::new(method, 0, 2, 8);
        sweep(
            SEEDS,
            |seed| {
                let q = q.clone();
                run_sim(FifoQueue::words_needed(method, 2, 8), q.init_words(), seed, 2, |p| {
                    let q = q.clone();
                    move |mut port: SimPort| {
                        let mut h = q.handle(&port);
                        if p == 0 {
                            for i in 0..ITEMS {
                                while !h.enqueue(&mut port, i) {
                                    stm_core::machine::MemPort::delay(&mut port, 8);
                                }
                            }
                        } else {
                            let mut expected = 0;
                            while expected < ITEMS {
                                match h.dequeue(&mut port) {
                                    Some(v) => {
                                        assert_eq!(v, expected, "FIFO violated");
                                        expected += 1;
                                    }
                                    // Poll, don't spin: a zero-delay empty
                                    // poll duels with the producer on the
                                    // queue's meta cells indefinitely.
                                    None => stm_core::machine::MemPort::delay(&mut port, 16),
                                }
                            }
                        }
                    }
                })
            },
            |seed, report| {
                let q = q.clone();
                let len = replay(&report.memory, move |port| {
                    let mut h = q.handle(port);
                    h.len(port)
                });
                assert_eq!(len, 0, "{method} seed {seed}: queue should drain");
            },
        );
    }
}

#[test]
fn resource_conservation_on_mesh_all_methods() {
    const PROCS: usize = 4;
    const M: usize = 8;
    for method in Method::PAPER {
        let pool = ResourcePool::new(method, 0, PROCS, M);
        sweep(
            SEEDS,
            |seed| {
                let pool = pool.clone();
                Simulation::new(
                    SimConfig {
                        n_words: ResourcePool::words_needed(method, PROCS, M),
                        seed,
                        jitter: 4,
                        max_cycles: 1 << 33,
                        init: pool.init_words(2),
                        ..Default::default()
                    },
                    MeshModel::for_procs(PROCS),
                )
                .run(PROCS, |p| {
                    let pool = pool.clone();
                    move |mut port: SimPort| {
                        let mut h = pool.handle(&port);
                        for i in 0..20 {
                            let set = [(p + i) % M, (p + i + 3) % M];
                            if h.try_acquire(&mut port, &set) {
                                h.release(&mut port, &set);
                            }
                        }
                    }
                })
            },
            |seed, report| {
                let pool = pool.clone();
                let counts = replay(&report.memory, move |port| {
                    let mut h = pool.handle(port);
                    h.read_all(port)
                });
                let total: u32 = counts.iter().sum();
                assert_eq!(total, 2 * M as u32, "{method} seed {seed}: units not conserved");
            },
        );
    }
}

#[test]
fn prio_queue_drains_sorted_on_sim_stm() {
    const PROCS: usize = 3;
    const PER: u32 = 10;
    let method = Method::Stm;
    let q = PrioQueue::new(method, 0, PROCS, (PROCS as u32 * PER) as usize);
    sweep(
        SEEDS,
        |seed| {
            let q = q.clone();
            run_sim(
                PrioQueue::words_needed(method, PROCS, (PROCS as u32 * PER) as usize),
                q.init_words(),
                seed,
                PROCS,
                |p| {
                    let q = q.clone();
                    move |mut port: SimPort| {
                        let mut h = q.handle(&port);
                        for i in 0..PER {
                            assert!(h.insert(&mut port, (i * PROCS as u32 + p as u32) * 7 % 101));
                        }
                    }
                },
            )
        },
        |seed, report| {
            let q = q.clone();
            let drained = replay(&report.memory, move |port| {
                let mut h = q.handle(port);
                let mut out = Vec::new();
                while let Some(v) = h.extract_min(port) {
                    out.push(v);
                }
                out
            });
            assert_eq!(drained.len(), (PROCS as u32 * PER) as usize, "seed {seed}");
            assert!(drained.windows(2).all(|w| w[0] <= w[1]), "seed {seed}: not sorted");
        },
    );
}

#[test]
fn deque_two_ended_traffic_across_schedules() {
    use stm_structures::deque::{Deque, End};
    const PROCS: usize = 4;
    let d = Deque::new(Method::Stm, 0, PROCS, 8);
    sweep(
        SEEDS,
        |seed| {
            let d = d.clone();
            run_sim(Deque::words_needed(Method::Stm, PROCS, 8), d.init_words(), seed, PROCS, |p| {
                let d = d.clone();
                move |mut port: SimPort| {
                    let mut h = d.handle(&port);
                    let my_end = if p.is_multiple_of(2) { End::Front } else { End::Back };
                    for i in 0..15u32 {
                        while !h.push(&mut port, my_end, i) {
                            stm_core::machine::MemPort::delay(&mut port, 16);
                        }
                        loop {
                            if h.pop(&mut port, my_end).is_some() {
                                break;
                            }
                            stm_core::machine::MemPort::delay(&mut port, 16);
                        }
                    }
                }
            })
        },
        |seed, report| {
            let d = d.clone();
            let len = replay(&report.memory, move |port| {
                let mut h = d.handle(port);
                h.len(port)
            });
            assert_eq!(len, 0, "seed {seed}: balanced deque traffic must drain");
        },
    );
}

#[test]
fn list_set_concurrent_churn_across_schedules() {
    use stm_structures::list_set::ListSet;
    const PROCS: usize = 3;
    let set = ListSet::new(0, PROCS, 12, stm_core::stm::StmConfig::default());
    sweep(
        SEEDS,
        |seed| {
            let set = set.clone();
            run_sim(ListSet::words_needed(PROCS, 12), set.init_words(), seed, PROCS, |p| {
                let set = set.clone();
                move |mut port: SimPort| {
                    let mut x = p as u32 + 1;
                    for _ in 0..25 {
                        x = x.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
                        let k = x % 8;
                        if x.is_multiple_of(2) {
                            let _ = set.insert(&mut port, k);
                        } else {
                            let _ = set.remove(&mut port, k);
                        }
                    }
                }
            })
        },
        |seed, report| {
            let set = set.clone();
            let keys = replay(&report.memory, move |port| set.keys(port));
            assert!(
                keys.windows(2).all(|w| w[0] < w[1]),
                "seed {seed}: not sorted/duplicate-free: {keys:?}"
            );
            assert!(keys.iter().all(|&k| k < 8), "seed {seed}: foreign key: {keys:?}");
        },
    );
}

/// All methods, same sequential op trace, same visible results — run on the
/// simulator (method equivalence modulo timing).
#[test]
fn methods_agree_on_a_sequential_trace() {
    let trace: Vec<(bool, u32)> =
        (0..40).map(|i| (i % 3 != 0, (i * 37 % 11) as u32)).collect();
    let mut results: Vec<Vec<Option<u32>>> = Vec::new();
    for method in Method::ALL {
        let q = FifoQueue::new(method, 0, 1, 4);
        let trace = trace.clone();
        let report = run_sim(FifoQueue::words_needed(method, 1, 4), q.init_words(), 0, 1, |_| {
            let q = q.clone();
            let trace = trace.clone();
            move |mut port: SimPort| {
                let mut h = q.handle(&port);
                for &(is_enq, v) in &trace {
                    if is_enq {
                        let _ = h.enqueue(&mut port, v);
                    } else {
                        let _ = h.dequeue(&mut port);
                    }
                }
            }
        });
        // Record the drained remainder as the visible result.
        let q2 = q.clone();
        let remainder = replay(&report.memory, move |port| {
            let mut h = q2.handle(port);
            let mut out = Vec::new();
            while let Some(v) = h.dequeue(port) {
                out.push(Some(v));
            }
            out
        });
        results.push(remainder);
    }
    for r in &results[1..] {
        assert_eq!(r, &results[0], "methods disagree on the same trace");
    }
}
