//! Telemetry properties: the observer event stream obeys its grammar on
//! both simulated architectures, and the Perfetto export is schema-valid
//! JSON for arbitrary seeds.
//!
//! The event grammar checked per observed [`Stm::run`] call:
//!
//! ```text
//! call    := attempt* final
//! attempt := AttemptBegin body Aborted
//! final   := AttemptBegin body Committed
//! body    := (Acquired | WriteBack | Released | Conflict | help)*
//! help    := HelpBegin (Acquired | WriteBack | Released)* HelpEnd
//! ```
//!
//! plus the cross-cutting invariants: event counts match the call's
//! [`TxStats`] exactly, and ownership acquisitions outside help spans are
//! strictly ascending in cell order (the paper's deadlock-avoidance
//! discipline, observed from the outside).

use std::sync::{Arc, Mutex};

use proptest::prelude::*;
use stm_core::stm::{StmConfig, TxOptions, TxSpec, TxStats};
use stm_core::{FlightEvent, FlightKind, FlightRecorder, RecordingObserver, TxEvent};
use stm_sim::arch::{BusModel, CostModel, MeshModel};
use stm_sim::engine::SimPort;
use stm_sim::harness::StmSim;

/// Validate one call's event stream against the grammar and its stats.
fn check_stream(events: &[TxEvent], stats: &TxStats) -> Result<(), String> {
    let count = |f: fn(&TxEvent) -> bool| events.iter().filter(|e| f(e)).count() as u64;
    let begins = count(|e| matches!(e, TxEvent::AttemptBegin { .. }));
    let commits = count(|e| matches!(e, TxEvent::Committed { .. }));
    let aborts = count(|e| matches!(e, TxEvent::Aborted { .. }));
    let conflicts = count(|e| matches!(e, TxEvent::Conflict { .. }));
    let help_begins = count(|e| matches!(e, TxEvent::HelpBegin { .. }));
    let help_ends = count(|e| matches!(e, TxEvent::HelpEnd { .. }));

    if begins != stats.attempts {
        return Err(format!("{begins} AttemptBegin for {} attempts", stats.attempts));
    }
    if conflicts != stats.conflicts {
        return Err(format!("{conflicts} Conflict events for {} conflicts", stats.conflicts));
    }
    if help_begins != stats.helps || help_ends != stats.helps {
        return Err(format!(
            "help events {help_begins}/{help_ends} for {} helps",
            stats.helps
        ));
    }
    if commits != 1 || aborts != stats.attempts - 1 {
        return Err(format!(
            "terminals {commits} Committed / {aborts} Aborted for {} attempts",
            stats.attempts
        ));
    }

    // Walk the stream: terminals close attempts, help spans never nest, and
    // acquires outside help spans ascend strictly within each attempt.
    let mut in_attempt = false;
    let mut help_depth = 0u32;
    let mut last_cell: Option<usize> = None;
    for e in events {
        match *e {
            TxEvent::AttemptBegin { attempt, .. } => {
                if in_attempt || help_depth != 0 {
                    return Err(format!("AttemptBegin inside open attempt: {e:?}"));
                }
                in_attempt = true;
                last_cell = None;
                let _ = attempt;
            }
            TxEvent::Committed { .. } | TxEvent::Aborted { .. } => {
                if !in_attempt || help_depth != 0 {
                    return Err(format!("terminal outside attempt: {e:?}"));
                }
                in_attempt = false;
            }
            TxEvent::HelpBegin { .. } => {
                if !in_attempt || help_depth != 0 {
                    return Err(format!("nested or stray HelpBegin: {e:?}"));
                }
                help_depth = 1;
            }
            TxEvent::HelpEnd { .. } => {
                if help_depth != 1 {
                    return Err(format!("HelpEnd without HelpBegin: {e:?}"));
                }
                help_depth = 0;
            }
            TxEvent::Acquired { cell, .. } => {
                if !in_attempt {
                    return Err(format!("Acquired outside attempt: {e:?}"));
                }
                if help_depth == 0 {
                    if let Some(prev) = last_cell {
                        if cell <= prev {
                            return Err(format!("acquires not ascending: {prev} then {cell}"));
                        }
                    }
                    last_cell = Some(cell);
                }
            }
            TxEvent::WriteBack { .. } | TxEvent::Released { .. } | TxEvent::Conflict { .. } => {
                if !in_attempt {
                    return Err(format!("{e:?} outside attempt"));
                }
            }
            TxEvent::BackoffWait { .. }
            | TxEvent::StarvationEscalated { .. }
            | TxEvent::OpPanicked { .. }
            | TxEvent::JournalFlush { .. }
            | TxEvent::RecoveryReplayed { .. }
            | TxEvent::ConflictDeferred { .. }
            | TxEvent::ForcedCommit { .. }
            | TxEvent::DeltaCommitted { .. }
            | TxEvent::RetryBlocked { .. }
            | TxEvent::RetryWoken { .. } => {
                // Managed-retry-loop / durability / fairness / blocking
                // events; the plain observed single-attempt stream under
                // test never emits them.
                return Err(format!("managed-path event on plain path: {e:?}"));
            }
        }
    }
    if in_attempt || help_depth != 0 {
        return Err("stream ends with an open attempt or help span".into());
    }
    if let Some(last) = events.last() {
        if !matches!(last, TxEvent::Committed { .. }) {
            return Err(format!("stream must end in Committed, ended in {last:?}"));
        }
    }
    Ok(())
}

/// Run a contended workload and check every call's event stream.
fn run_ordering_check(model: impl CostModel + 'static, procs: usize, seed: u64, jitter: u64) {
    const TXS: usize = 12;
    let sim = StmSim::new(procs, 4, 3, StmConfig::default()).seed(seed).jitter(jitter);
    let violations: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let total_helps = Arc::new(Mutex::new(0u64));
    let report = sim.run(model, |p, ops| {
        let violations = Arc::clone(&violations);
        let total_helps = Arc::clone(&total_helps);
        move |mut port: SimPort| {
            let mut helps = 0;
            for i in 0..TXS {
                let mut rec = RecordingObserver::default();
                // Overlapping 2- and 3-cell sets centered on shared cell 0.
                let cells = if i % 2 == 0 { vec![0, 1 + (p + i) % 3] } else { vec![0, 1, 3] };
                let spec = TxSpec::new(ops.builtins().add, &[1; 3][..cells.len()], &cells);
                let out = ops
                    .stm()
                    .run(&mut port, &spec, &mut TxOptions::new().observer(&mut rec))
                    .unwrap();
                helps += out.stats.helps;
                if let Err(msg) = check_stream(rec.events(), &out.stats) {
                    violations.lock().unwrap().push(format!("P{p} tx{i}: {msg}"));
                }
            }
            *total_helps.lock().unwrap() += helps;
        }
    });
    assert_eq!(report.crashed, Vec::<usize>::new());
    let v = violations.lock().unwrap();
    assert!(v.is_empty(), "observer grammar violations: {v:#?}");
}

/// The coarse projection of a full observer stream: what the flight
/// recorder is specified to capture (everything except the per-cell micro
/// events `Acquired` / `WriteBack` / `Released`).
fn coarse_projection(events: &[TxEvent]) -> Vec<FlightKind> {
    events
        .iter()
        .filter_map(|e| match e {
            TxEvent::AttemptBegin { .. } => Some(FlightKind::AttemptBegin),
            TxEvent::Conflict { .. } => Some(FlightKind::Conflict),
            TxEvent::HelpBegin { .. } => Some(FlightKind::HelpBegin),
            TxEvent::HelpEnd { .. } => Some(FlightKind::HelpEnd),
            TxEvent::Committed { .. } => Some(FlightKind::Committed),
            TxEvent::Aborted { .. } => Some(FlightKind::Aborted),
            TxEvent::BackoffWait { .. } => Some(FlightKind::BackoffWait),
            TxEvent::StarvationEscalated { .. } => Some(FlightKind::StarvationEscalated),
            TxEvent::OpPanicked { .. } => Some(FlightKind::OpPanicked),
            TxEvent::JournalFlush { .. } => Some(FlightKind::JournalFlush),
            TxEvent::RecoveryReplayed { .. } => Some(FlightKind::RecoveryReplayed),
            TxEvent::ConflictDeferred { .. } => Some(FlightKind::ConflictDeferred),
            TxEvent::ForcedCommit { .. } => Some(FlightKind::ForcedCommit),
            TxEvent::DeltaCommitted { .. } => Some(FlightKind::DeltaCommit),
            TxEvent::RetryBlocked { .. } => Some(FlightKind::RetryBlocked),
            TxEvent::RetryWoken { .. } => Some(FlightKind::RetryWoken),
            TxEvent::Acquired { .. } | TxEvent::WriteBack { .. } | TxEvent::Released { .. } => {
                None
            }
        })
        .collect()
}

/// Check a drained flight stream against the reference observer stream:
/// same coarse kind sequence, and every `Conflict` record carries the same
/// cell and blamed owner as the reference event.
fn check_flight_against_reference(
    flight: &[FlightEvent],
    reference: &[TxEvent],
) -> Result<(), String> {
    let expected = coarse_projection(reference);
    let got: Vec<FlightKind> = flight.iter().map(|e| e.kind).collect();
    if got != expected {
        return Err(format!("kind sequence diverged:\n  flight {got:?}\n  ref    {expected:?}"));
    }
    let ref_conflicts: Vec<(Option<usize>, Option<usize>)> = reference
        .iter()
        .filter_map(|e| match *e {
            TxEvent::Conflict { cell, owner, .. } => Some((cell, owner)),
            _ => None,
        })
        .collect();
    let flight_conflicts: Vec<(Option<usize>, Option<usize>)> = flight
        .iter()
        .filter(|e| e.kind == FlightKind::Conflict)
        .map(|e| {
            (e.conflict_cell(), e.conflict_owner().map(|(p, _)| p as usize))
        })
        .collect();
    if flight_conflicts != ref_conflicts {
        return Err(format!(
            "conflict attribution diverged:\n  flight {flight_conflicts:?}\n  ref    {ref_conflicts:?}"
        ));
    }
    Ok(())
}

/// Fingerprint of a sim run for schedule-identity comparisons: virtual
/// cycles, full aggregate stats, and final memory image.
fn run_fingerprint(
    model: impl CostModel + 'static,
    procs: usize,
    seed: u64,
    with_recorder: bool,
) -> (u64, stm_sim::stats::SimStats, Vec<stm_core::word::Word>) {
    const TXS: usize = 10;
    let sim = StmSim::new(procs, 4, 3, StmConfig::default()).seed(seed);
    let report = sim.run(model, |p, ops| {
        move |mut port: SimPort| {
            let mut rec = FlightRecorder::new(p, 64);
            for i in 0..TXS {
                let cells = if i % 2 == 0 { vec![0, 1 + (p + i) % 3] } else { vec![0, 1, 3] };
                let spec = TxSpec::new(ops.builtins().add, &[1; 3][..cells.len()], &cells);
                if with_recorder {
                    let _ = ops
                        .stm()
                        .run(&mut port, &spec, &mut TxOptions::new().observer(&mut rec))
                        .unwrap();
                } else {
                    let _ = ops.stm().run(&mut port, &spec, &mut TxOptions::new()).unwrap();
                }
            }
        }
    });
    assert_eq!(report.crashed, Vec::<usize>::new());
    (report.cycles, report.stats, report.memory)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// S4a: draining the flight ring reconstructs the observer event
    /// grammar — the recorder's stream is exactly the coarse projection of
    /// the reference `RecordingObserver` stream, conflicts attributed to
    /// the same cell and owner. The tee observer `(A, B)` feeds both from
    /// the same callbacks, so any divergence is the ring's fault.
    #[test]
    fn flight_ring_reconstructs_observer_grammar(
        seed in 0u64..1000,
        jitter in 0u64..4,
        procs in 2usize..6,
    ) {
        const TXS: usize = 10;
        let sim = StmSim::new(procs, 4, 3, StmConfig::default()).seed(seed).jitter(jitter);
        let violations: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
        let report = sim.run(BusModel::for_procs(procs), |p, ops| {
            let violations = Arc::clone(&violations);
            move |mut port: SimPort| {
                // Large enough that nothing wraps: drops would break the
                // reconstruction and are tested separately below.
                let mut tee = (RecordingObserver::default(), FlightRecorder::new(p, 4096));
                for i in 0..TXS {
                    let cells =
                        if i % 2 == 0 { vec![0, 1 + (p + i) % 3] } else { vec![0, 1, 3] };
                    let spec = TxSpec::new(ops.builtins().add, &[1; 3][..cells.len()], &cells);
                    let _ = ops
                        .stm()
                        .run(&mut port, &spec, &mut TxOptions::new().observer(&mut tee))
                        .unwrap();
                }
                let (reference, mut rec) = tee;
                assert_eq!(rec.dropped(), 0, "ring sized to never wrap");
                if let Err(msg) = check_flight_against_reference(&rec.drain(), reference.events())
                {
                    violations.lock().unwrap().push(format!("P{p}: {msg}"));
                }
            }
        });
        prop_assert_eq!(report.crashed, Vec::<usize>::new());
        let v = violations.lock().unwrap();
        prop_assert!(v.is_empty(), "flight reconstruction violations: {:#?}", *v);
    }

    /// S4b: overflowing a deliberately tiny ring loses the oldest events to
    /// overwrite, but the accounting is exact — drained + dropped equals
    /// the number of events written, and what survives is a suffix of the
    /// coarse projection.
    #[test]
    fn flight_overflow_drops_are_counted_not_lost(
        seed in 0u64..1000,
        procs in 2usize..5,
    ) {
        const TXS: usize = 12;
        let sim = StmSim::new(procs, 4, 3, StmConfig::default()).seed(seed);
        let failures: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
        let report = sim.run(BusModel::for_procs(procs), |p, ops| {
            let failures = Arc::clone(&failures);
            move |mut port: SimPort| {
                // 8 slots: guaranteed to wrap (each tx writes >= 2 events).
                let mut tee = (RecordingObserver::default(), FlightRecorder::new(p, 8));
                for i in 0..TXS {
                    let cells =
                        if i % 2 == 0 { vec![0, 1 + (p + i) % 3] } else { vec![0, 1, 3] };
                    let spec = TxSpec::new(ops.builtins().add, &[1; 3][..cells.len()], &cells);
                    let _ = ops
                        .stm()
                        .run(&mut port, &spec, &mut TxOptions::new().observer(&mut tee))
                        .unwrap();
                }
                let (reference, mut rec) = tee;
                let written = rec.buffer().written();
                let drained = rec.drain();
                if drained.len() as u64 + rec.dropped() != written {
                    failures.lock().unwrap().push(format!(
                        "P{p}: {} drained + {} dropped != {written} written",
                        drained.len(),
                        rec.dropped()
                    ));
                }
                let expected = coarse_projection(reference.events());
                let got: Vec<FlightKind> = drained.iter().map(|e| e.kind).collect();
                if written != expected.len() as u64 || !expected.ends_with(&got) {
                    failures
                        .lock()
                        .unwrap()
                        .push(format!("P{p}: surviving tail is not a suffix: {got:?}"));
                }
            }
        });
        prop_assert_eq!(report.crashed, Vec::<usize>::new());
        let v = failures.lock().unwrap();
        prop_assert!(v.is_empty(), "overflow accounting violations: {:#?}", *v);
    }

    /// S4c: attaching the flight recorder leaves default-config schedules
    /// bit-identical on both architectures — same virtual cycle count, same
    /// aggregate stats, same final memory image. The recorder performs no
    /// port operations, so the simulated interleaving cannot observe it.
    #[test]
    fn schedules_bit_identical_with_recorder_attached(
        seed in 0u64..1000,
        procs in 2usize..6,
    ) {
        let bare = run_fingerprint(BusModel::for_procs(procs), procs, seed, false);
        let observed = run_fingerprint(BusModel::for_procs(procs), procs, seed, true);
        prop_assert_eq!(bare, observed, "bus schedule diverged under observation");

        let bare = run_fingerprint(MeshModel::for_procs(procs), procs, seed, false);
        let observed = run_fingerprint(MeshModel::for_procs(procs), procs, seed, true);
        prop_assert_eq!(bare, observed, "mesh schedule diverged under observation");
    }

    #[test]
    fn observer_ordering_holds_on_bus(seed in 0u64..1000, jitter in 0u64..4, procs in 2usize..6) {
        run_ordering_check(BusModel::for_procs(procs), procs, seed, jitter);
    }

    #[test]
    fn observer_ordering_holds_on_mesh(seed in 0u64..1000, jitter in 0u64..4, procs in 2usize..6) {
        run_ordering_check(MeshModel::for_procs(procs), procs, seed, jitter);
    }

    #[test]
    fn perfetto_export_is_schema_valid_for_any_seed(seed in 0u64..1000, procs in 2usize..5) {
        let sim = StmSim::new(procs, 2, 2, StmConfig::default()).seed(seed).jitter(2).trace(100_000);
        let report = sim.run(BusModel::for_procs(procs), |_p, ops| {
            move |mut port: SimPort| {
                for _ in 0..6 {
                    ops.fetch_add_many(&mut port, &[0, 1], &[1, 1]);
                }
            }
        });
        let json = stm_sim::perfetto::chrome_trace_json(&report);
        let v: serde_json::Value = serde_json::from_str(&json).expect("export must parse");
        let evs = v["traceEvents"].as_array().expect("traceEvents is an array");
        // Every event carries the required Trace Event Format fields.
        for e in evs {
            prop_assert!(e["ph"].as_str().is_some(), "missing ph: {e:?}");
            prop_assert!(e["pid"].as_u64().is_some(), "missing pid: {e:?}");
        }
        // Commit spans mirror the engine's commit count exactly.
        let commit_spans = evs
            .iter()
            .filter(|e| e["ph"].as_str() == Some("X") && e["name"].as_str() == Some("tx commit"))
            .count() as u64;
        prop_assert_eq!(commit_spans, report.stats.commits());
        prop_assert_eq!(v["otherData"]["trace_dropped"].as_u64(), Some(0));
    }
}
