//! Telemetry properties: the observer event stream obeys its grammar on
//! both simulated architectures, and the Perfetto export is schema-valid
//! JSON for arbitrary seeds.
//!
//! The event grammar checked per observed [`Stm::run`] call:
//!
//! ```text
//! call    := attempt* final
//! attempt := AttemptBegin body Aborted
//! final   := AttemptBegin body Committed
//! body    := (Acquired | WriteBack | Released | Conflict | help)*
//! help    := HelpBegin (Acquired | WriteBack | Released)* HelpEnd
//! ```
//!
//! plus the cross-cutting invariants: event counts match the call's
//! [`TxStats`] exactly, and ownership acquisitions outside help spans are
//! strictly ascending in cell order (the paper's deadlock-avoidance
//! discipline, observed from the outside).

use std::sync::{Arc, Mutex};

use proptest::prelude::*;
use stm_core::stm::{StmConfig, TxOptions, TxSpec, TxStats};
use stm_core::{RecordingObserver, TxEvent};
use stm_sim::arch::{BusModel, CostModel, MeshModel};
use stm_sim::engine::SimPort;
use stm_sim::harness::StmSim;

/// Validate one call's event stream against the grammar and its stats.
fn check_stream(events: &[TxEvent], stats: &TxStats) -> Result<(), String> {
    let count = |f: fn(&TxEvent) -> bool| events.iter().filter(|e| f(e)).count() as u64;
    let begins = count(|e| matches!(e, TxEvent::AttemptBegin { .. }));
    let commits = count(|e| matches!(e, TxEvent::Committed { .. }));
    let aborts = count(|e| matches!(e, TxEvent::Aborted { .. }));
    let conflicts = count(|e| matches!(e, TxEvent::Conflict { .. }));
    let help_begins = count(|e| matches!(e, TxEvent::HelpBegin { .. }));
    let help_ends = count(|e| matches!(e, TxEvent::HelpEnd { .. }));

    if begins != stats.attempts {
        return Err(format!("{begins} AttemptBegin for {} attempts", stats.attempts));
    }
    if conflicts != stats.conflicts {
        return Err(format!("{conflicts} Conflict events for {} conflicts", stats.conflicts));
    }
    if help_begins != stats.helps || help_ends != stats.helps {
        return Err(format!(
            "help events {help_begins}/{help_ends} for {} helps",
            stats.helps
        ));
    }
    if commits != 1 || aborts != stats.attempts - 1 {
        return Err(format!(
            "terminals {commits} Committed / {aborts} Aborted for {} attempts",
            stats.attempts
        ));
    }

    // Walk the stream: terminals close attempts, help spans never nest, and
    // acquires outside help spans ascend strictly within each attempt.
    let mut in_attempt = false;
    let mut help_depth = 0u32;
    let mut last_cell: Option<usize> = None;
    for e in events {
        match *e {
            TxEvent::AttemptBegin { attempt, .. } => {
                if in_attempt || help_depth != 0 {
                    return Err(format!("AttemptBegin inside open attempt: {e:?}"));
                }
                in_attempt = true;
                last_cell = None;
                let _ = attempt;
            }
            TxEvent::Committed { .. } | TxEvent::Aborted { .. } => {
                if !in_attempt || help_depth != 0 {
                    return Err(format!("terminal outside attempt: {e:?}"));
                }
                in_attempt = false;
            }
            TxEvent::HelpBegin { .. } => {
                if !in_attempt || help_depth != 0 {
                    return Err(format!("nested or stray HelpBegin: {e:?}"));
                }
                help_depth = 1;
            }
            TxEvent::HelpEnd { .. } => {
                if help_depth != 1 {
                    return Err(format!("HelpEnd without HelpBegin: {e:?}"));
                }
                help_depth = 0;
            }
            TxEvent::Acquired { cell, .. } => {
                if !in_attempt {
                    return Err(format!("Acquired outside attempt: {e:?}"));
                }
                if help_depth == 0 {
                    if let Some(prev) = last_cell {
                        if cell <= prev {
                            return Err(format!("acquires not ascending: {prev} then {cell}"));
                        }
                    }
                    last_cell = Some(cell);
                }
            }
            TxEvent::WriteBack { .. } | TxEvent::Released { .. } | TxEvent::Conflict { .. } => {
                if !in_attempt {
                    return Err(format!("{e:?} outside attempt"));
                }
            }
            TxEvent::BackoffWait { .. }
            | TxEvent::StarvationEscalated { .. }
            | TxEvent::OpPanicked { .. }
            | TxEvent::JournalFlush { .. }
            | TxEvent::RecoveryReplayed { .. } => {
                // Managed-retry-loop / durability events; the classic
                // execute_observed path under test never emits them.
                return Err(format!("managed-path event on classic path: {e:?}"));
            }
        }
    }
    if in_attempt || help_depth != 0 {
        return Err("stream ends with an open attempt or help span".into());
    }
    if let Some(last) = events.last() {
        if !matches!(last, TxEvent::Committed { .. }) {
            return Err(format!("stream must end in Committed, ended in {last:?}"));
        }
    }
    Ok(())
}

/// Run a contended workload and check every call's event stream.
fn run_ordering_check(model: impl CostModel + 'static, procs: usize, seed: u64, jitter: u64) {
    const TXS: usize = 12;
    let sim = StmSim::new(procs, 4, 3, StmConfig::default()).seed(seed).jitter(jitter);
    let violations: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let total_helps = Arc::new(Mutex::new(0u64));
    let report = sim.run(model, |p, ops| {
        let violations = Arc::clone(&violations);
        let total_helps = Arc::clone(&total_helps);
        move |mut port: SimPort| {
            let mut helps = 0;
            for i in 0..TXS {
                let mut rec = RecordingObserver::default();
                // Overlapping 2- and 3-cell sets centered on shared cell 0.
                let cells = if i % 2 == 0 { vec![0, 1 + (p + i) % 3] } else { vec![0, 1, 3] };
                let spec = TxSpec::new(ops.builtins().add, &[1; 3][..cells.len()], &cells);
                let out = ops
                    .stm()
                    .run(&mut port, &spec, &mut TxOptions::new().observer(&mut rec))
                    .unwrap();
                helps += out.stats.helps;
                if let Err(msg) = check_stream(rec.events(), &out.stats) {
                    violations.lock().unwrap().push(format!("P{p} tx{i}: {msg}"));
                }
            }
            *total_helps.lock().unwrap() += helps;
        }
    });
    assert_eq!(report.crashed, Vec::<usize>::new());
    let v = violations.lock().unwrap();
    assert!(v.is_empty(), "observer grammar violations: {v:#?}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn observer_ordering_holds_on_bus(seed in 0u64..1000, jitter in 0u64..4, procs in 2usize..6) {
        run_ordering_check(BusModel::for_procs(procs), procs, seed, jitter);
    }

    #[test]
    fn observer_ordering_holds_on_mesh(seed in 0u64..1000, jitter in 0u64..4, procs in 2usize..6) {
        run_ordering_check(MeshModel::for_procs(procs), procs, seed, jitter);
    }

    #[test]
    fn perfetto_export_is_schema_valid_for_any_seed(seed in 0u64..1000, procs in 2usize..5) {
        let sim = StmSim::new(procs, 2, 2, StmConfig::default()).seed(seed).jitter(2).trace(100_000);
        let report = sim.run(BusModel::for_procs(procs), |_p, ops| {
            move |mut port: SimPort| {
                for _ in 0..6 {
                    ops.fetch_add_many(&mut port, &[0, 1], &[1, 1]);
                }
            }
        });
        let json = stm_sim::perfetto::chrome_trace_json(&report);
        let v: serde_json::Value = serde_json::from_str(&json).expect("export must parse");
        let evs = v["traceEvents"].as_array().expect("traceEvents is an array");
        // Every event carries the required Trace Event Format fields.
        for e in evs {
            prop_assert!(e["ph"].as_str().is_some(), "missing ph: {e:?}");
            prop_assert!(e["pid"].as_u64().is_some(), "missing pid: {e:?}");
        }
        // Commit spans mirror the engine's commit count exactly.
        let commit_spans = evs
            .iter()
            .filter(|e| e["ph"].as_str() == Some("X") && e["name"].as_str() == Some("tx commit"))
            .count() as u64;
        prop_assert_eq!(commit_spans, report.stats.commits());
        prop_assert_eq!(v["otherData"]["trace_dropped"].as_u64(), Some(0));
    }
}
