//! Property-based tests (proptest): the STM against reference models.
//!
//! Single-threaded properties check *semantics* (a transaction is exactly a
//! k-word read-modify-write against a plain reference vector); multi-seed
//! simulator properties check *concurrency* (outcomes under random schedules
//! match some sequential order).

use proptest::collection::vec;
use proptest::prelude::*;
use stm_core::machine::host::HostMachine;
use stm_core::machine::MemPort;
use stm_core::ops::StmOps;
use stm_core::stm::{StmConfig, TxBudget, TxOptions, TxSpec};
use stm_core::word::{
    cell_stamp, cell_successor, cell_value, oldval_for_version, pack_cell, pack_oldval_set,
    pack_oldval_unset, pack_owner, pack_status, unpack_owner, unpack_status, TxStatus,
};
use stm_sim::arch::BusModel;
use stm_sim::engine::SimPort;
use stm_sim::harness::StmSim;

// ---------------------------------------------------------------------------
// Packed-word layout properties
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn cell_words_roundtrip(stamp: u16, value: u32) {
        let w = pack_cell(stamp, value);
        prop_assert_eq!(cell_stamp(w), stamp);
        prop_assert_eq!(cell_value(w), value);
        let s = cell_successor(w, value ^ 1);
        prop_assert_eq!(cell_stamp(s), stamp.wrapping_add(1));
        prop_assert_eq!(cell_value(s), value ^ 1);
    }

    #[test]
    fn ownership_words_roundtrip(proc in 0usize..=65_533, version: u64) {
        let w = pack_owner(proc, version);
        let (p, v) = unpack_owner(w).expect("owned word");
        prop_assert_eq!(p, proc);
        prop_assert_eq!(v, version & ((1u64 << 40) - 1));
    }

    #[test]
    fn status_words_roundtrip(version: u64, idx in 0usize..4095) {
        for st in [TxStatus::Null, TxStatus::Success, TxStatus::Failure(idx), TxStatus::Initializing] {
            let w = pack_status(version, st);
            let (v, s) = unpack_status(w);
            prop_assert_eq!(s, st);
            prop_assert_eq!(v, version & ((1u64 << 40) - 1));
        }
    }

    #[test]
    fn oldval_entries_are_version_guarded(v1: u64, v2: u64, stamp: u16, value: u32) {
        let cell = pack_cell(stamp, value);
        let set = pack_oldval_set(v1, cell);
        let got = oldval_for_version(set, v2);
        if (v1 ^ v2) & ((1 << 15) - 1) == 0 {
            prop_assert_eq!(got, Ok(cell));
        } else {
            prop_assert_eq!(got, Err(false));
        }
        prop_assert_eq!(oldval_for_version(pack_oldval_unset(v1), v1), Err(true));
    }
}

// ---------------------------------------------------------------------------
// Transaction semantics vs a reference model (single-threaded)
// ---------------------------------------------------------------------------

/// A random program of multi-cell adds and swaps, applied both through the
/// STM and to a plain `Vec<u32>` reference; they must agree exactly
/// (including returned old values).
#[derive(Debug, Clone)]
enum RefOp {
    Add(Vec<(usize, u32)>),
    Swap(usize, u32),
    Mwcas(Vec<(usize, u32, u32)>),
}

fn ref_op_strategy(n_cells: usize) -> impl Strategy<Value = RefOp> {
    let add = vec((0..n_cells, any::<u32>()), 1..4).prop_filter_map("distinct cells", |mut v| {
        v.sort_by_key(|e| e.0);
        v.dedup_by_key(|e| e.0);
        Some(RefOp::Add(v))
    });
    let swap = (0..n_cells, any::<u32>()).prop_map(|(c, v)| RefOp::Swap(c, v));
    let mwcas =
        vec((0..n_cells, any::<u32>(), any::<u32>()), 1..4).prop_filter_map("distinct", |mut v| {
            v.sort_by_key(|e| e.0);
            v.dedup_by_key(|e| e.0);
            Some(RefOp::Mwcas(v))
        });
    prop_oneof![add, swap, mwcas]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn stm_matches_reference_model(ops_list in vec(ref_op_strategy(6), 1..40)) {
        const CELLS: usize = 6;
        let ops = StmOps::new(0, CELLS, 1, 8, StmConfig::default());
        let machine = HostMachine::new(ops.stm().layout().words_needed(), 1);
        let mut port = machine.port(0);
        let mut reference = vec![0u32; CELLS];

        for op in &ops_list {
            match op {
                RefOp::Add(entries) => {
                    let cells: Vec<usize> = entries.iter().map(|e| e.0).collect();
                    let deltas: Vec<u32> = entries.iter().map(|e| e.1).collect();
                    let old = ops.fetch_add_many(&mut port, &cells, &deltas);
                    for (i, &(c, d)) in entries.iter().enumerate() {
                        prop_assert_eq!(old[i], reference[c]);
                        reference[c] = reference[c].wrapping_add(d);
                    }
                }
                RefOp::Swap(c, v) => {
                    let old = ops.swap(&mut port, *c, *v);
                    prop_assert_eq!(old, reference[*c]);
                    reference[*c] = *v;
                }
                RefOp::Mwcas(entries) => {
                    let result = ops.mwcas(
                        &mut port,
                        &entries.iter().map(|&(c, e, n)| (c, e, n)).collect::<Vec<_>>(),
                    );
                    let should_match = entries.iter().all(|&(c, e, _)| reference[c] == e);
                    prop_assert_eq!(result.is_ok(), should_match);
                    if should_match {
                        for &(c, _, n) in entries {
                            reference[c] = n;
                        }
                    }
                }
            }
        }
        // Final states agree.
        let all: Vec<usize> = (0..CELLS).collect();
        prop_assert_eq!(ops.snapshot(&mut port, &all), reference);
    }
}

// ---------------------------------------------------------------------------
// Dynamic transactions vs the same reference model
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    /// A random sequence of read-modify-write bodies through the dynamic
    /// layer must match a plain reference vector exactly.
    #[test]
    fn dynamic_stm_matches_reference(ops_list in vec((0usize..6, any::<u32>(), any::<bool>()), 1..30)) {
        use stm_core::dynamic::DynamicStm;
        const CELLS: usize = 6;
        let d = DynamicStm::new(0, CELLS, 1, StmConfig::default());
        let machine = HostMachine::new(d.stm().layout().words_needed(), 1);
        let mut port = machine.port(0);
        let mut reference = [0u32; CELLS];
        for &(c, v, also_neighbour) in &ops_list {
            let (got, _) = d
                .run(
                    &mut port,
                    |tx| {
                        let old = tx.read(c);
                        tx.write(c, old ^ v);
                        if also_neighbour {
                            let n = (c + 1) % CELLS;
                            let o = tx.read(n);
                            tx.write(n, o.wrapping_add(1));
                        }
                        old
                    },
                    &mut TxOptions::new(),
                )
                .unwrap();
            prop_assert_eq!(got, reference[c]);
            reference[c] ^= v;
            if also_neighbour {
                let n = (c + 1) % CELLS;
                reference[n] = reference[n].wrapping_add(1);
            }
        }
        for (c, &want) in reference.iter().enumerate() {
            prop_assert_eq!(d.read_cell(&mut port, c), want);
        }
    }
}

// ---------------------------------------------------------------------------
// Sorted list set vs BTreeSet (proptest, single-threaded)
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn list_set_matches_btreeset(ops_list in vec((0u8..3, 0u32..20), 0..80)) {
        use stm_structures::list_set::ListSet;
        const CAP: usize = 12;
        let s = ListSet::new(0, 1, CAP, StmConfig::default());
        let machine = HostMachine::new(ListSet::words_needed(1, CAP), 1);
        let mut port = machine.port(0);
        s.init_on(&mut port);
        let mut reference = std::collections::BTreeSet::new();
        for &(op, k) in &ops_list {
            match op {
                0 => {
                    let want = reference.len() < CAP && !reference.contains(&k);
                    prop_assert_eq!(s.insert(&mut port, k), want);
                    if want {
                        reference.insert(k);
                    }
                }
                1 => prop_assert_eq!(s.remove(&mut port, k), reference.remove(&k)),
                _ => prop_assert_eq!(s.contains(&mut port, k), reference.contains(&k)),
            }
        }
        prop_assert_eq!(s.keys(&mut port), reference.into_iter().collect::<Vec<_>>());
    }
}

// ---------------------------------------------------------------------------
// Concurrent properties on the simulator
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    /// Commutative concurrent increments: any schedule must land on the
    /// exact sum — run each generated workload on a random seed.
    #[test]
    fn concurrent_adds_sum_exactly(
        seed in 0u64..1000,
        per_proc in vec(1u32..20, 3),
    ) {
        const CELLS: usize = 3;
        let procs = per_proc.len();
        let sim = StmSim::new(procs, CELLS, 2, StmConfig::default()).seed(seed).jitter(4);
        let per = per_proc.clone();
        let report = sim.run(BusModel::for_procs(procs), |p, ops| {
            let n = per[p];
            move |mut port: SimPort| {
                for i in 0..n {
                    ops.fetch_add(&mut port, (p + i as usize) % CELLS, 1);
                }
            }
        });
        let total: u32 = sim.all_cells(&report).iter().sum();
        prop_assert_eq!(total, per_proc.iter().sum::<u32>());
        prop_assert!(sim.leaked_ownerships(&report).is_empty());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    /// After any single injected crash — random protocol step, random
    /// architecture, random schedule — the helpers drain the victim: no
    /// ownership stays claimed, and the victim's committed effect is applied
    /// exactly as the helping oracle demands (once if the crash left
    /// anything claimed, never otherwise).
    #[test]
    fn single_injected_fault_is_drained_by_helpers(
        point_idx in 0usize..13,
        mesh: bool,
        seed in 0u64..1000,
    ) {
        use stm_sim::explore::crash_matrix;
        use stm_sim::liveness::LivenessChecker;

        let matrix = crash_matrix(0, 2);
        let point = &matrix[point_idx];
        let sim = StmSim::new(3, 4, 4, StmConfig::default())
            .seed(seed)
            .jitter(2)
            .trace(100_000)
            .faults(point.plan.clone());
        let body = |p: usize, ops: StmOps| {
            move |mut port: SimPort| {
                if p == 0 {
                    // The victim: one 2-cell transaction, crashed by the plan.
                    ops.fetch_add_many(&mut port, &[0, 1], &[100, 100]);
                    return;
                }
                // Survivors start late (so the victim reaches its crash point
                // first) and then contend on the victim's cells.
                port.delay(5000);
                for _ in 0..5 {
                    ops.fetch_add_many(&mut port, &[0, 1], &[1, 1]);
                }
            }
        };
        let report = if mesh {
            sim.run(stm_sim::arch::MeshModel::for_procs(3), body)
        } else {
            sim.run(BusModel::for_procs(3), body)
        };
        let want = if point.expect_effect { 110 } else { 10 };
        for cell in 0..2 {
            prop_assert_eq!(
                sim.cell_value(&report, cell), want,
                "crash@{} cell {}", point.label, cell
            );
        }
        prop_assert!(sim.leaked_ownerships(&report).is_empty(), "crash@{}", point.label);
        prop_assert_eq!(LivenessChecker::with_budget(60_000).check(&report), None);
    }
}

// ---------------------------------------------------------------------------
// Heap property tests (priority-queue substrate)
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]
    #[test]
    fn heap_matches_std_binary_heap(values in vec(any::<u32>(), 0..40)) {
        use stm_structures::prio::heap;
        let mut state = vec![0u32; 1 + 64];
        let mut reference = std::collections::BinaryHeap::new();
        for &v in &values {
            prop_assert!(heap::insert(&mut state, v));
            reference.push(std::cmp::Reverse(v));
            prop_assert!(heap::is_valid(&state));
        }
        loop {
            let got = heap::extract_min(&mut state);
            let want = reference.pop().map(|r| r.0);
            prop_assert_eq!(got, want);
            prop_assert!(heap::is_valid(&state));
            if want.is_none() {
                break;
            }
        }
    }

    #[test]
    fn heap_interleaved_ops_match_reference(ops_list in vec((any::<bool>(), any::<u32>()), 0..60)) {
        use stm_structures::prio::heap;
        let mut state = vec![0u32; 1 + 16];
        let mut reference = std::collections::BinaryHeap::new();
        for &(is_insert, v) in &ops_list {
            if is_insert {
                let ok = heap::insert(&mut state, v);
                if reference.len() < 16 {
                    prop_assert!(ok);
                    reference.push(std::cmp::Reverse(v));
                } else {
                    prop_assert!(!ok);
                }
            } else {
                let got = heap::extract_min(&mut state);
                let want = reference.pop().map(|r| r.0);
                prop_assert_eq!(got, want);
            }
            prop_assert!(heap::is_valid(&state));
        }
    }
}

// ---------------------------------------------------------------------------
// Queue semantics under a random single-threaded op sequence, all methods
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    #[test]
    fn queue_matches_vecdeque_reference(ops_list in vec((any::<bool>(), any::<u32>()), 0..60)) {
        use stm_structures::queue::FifoQueue;
        use stm_structures::Method;
        const CAP: usize = 8;
        for method in Method::ALL {
            let q = FifoQueue::new(method, 0, 1, CAP);
            let machine = HostMachine::new(FifoQueue::words_needed(method, 1, CAP), 1);
            let mut port = machine.port(0);
            q.init_on(&mut port);
            let mut h = q.handle(&port);
            let mut reference = std::collections::VecDeque::new();
            for &(is_enq, v) in &ops_list {
                if is_enq {
                    let ok = h.enqueue(&mut port, v);
                    if reference.len() < CAP {
                        prop_assert!(ok);
                        reference.push_back(v);
                    } else {
                        prop_assert!(!ok);
                    }
                } else {
                    prop_assert_eq!(h.dequeue(&mut port), reference.pop_front());
                }
                prop_assert_eq!(h.len(&mut port), reference.len());
            }
        }
    }
}

// ---------------------------------------------------------------------------
// A single-attempt budget surfaces conflicts without spinning
// ---------------------------------------------------------------------------

#[test]
fn single_attempt_budget_reports_conflict_against_wedged_owner() {
    // Wedge cell 0 under a crashed, helping-disabled-undecidable... rather:
    // crash a transaction and disable helping in the *prober*, so the probe
    // cannot complete the dead transaction and must report the conflict.
    let sim = StmSim::new(
        2,
        2,
        2,
        StmConfig { helping: false, ..Default::default() },
    )
    .seed(4)
    .jitter(0);
    let conflict_seen = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let cs = std::sync::Arc::clone(&conflict_seen);
    let _ = sim.run(BusModel::for_procs(2), |p, ops| {
        let cs = std::sync::Arc::clone(&cs);
        move |mut port: SimPort| {
            let builtins = ops.builtins();
            let cells = [0usize];
            if p == 0 {
                ops.stm().inject_crash_after_acquire(
                    &mut port,
                    &TxSpec::new(builtins.add, &[1], &cells),
                );
                return;
            }
            // Give the crasher time to acquire, then probe once.
            port.delay(10_000);
            let spec = TxSpec::new(builtins.add, &[1], &cells);
            let mut once = TxOptions::new().budget(TxBudget::attempts(1));
            if ops.stm().run(&mut port, &spec, &mut once).is_err() {
                cs.store(true, std::sync::atomic::Ordering::SeqCst);
            }
        }
    });
    assert!(
        conflict_seen.load(std::sync::atomic::Ordering::SeqCst),
        "probe must observe the conflict with the wedged transaction"
    );
}
