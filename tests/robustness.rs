//! Robustness of the hardened host runtime: panic containment, transaction
//! budgets, starvation escalation, sabotage interaction, and the chaos port.
//!
//! These are the acceptance tests for the contention-management subsystem
//! (`stm_core::contention`): a panicking commit program must abort cleanly
//! with every ownership released, a rigged pathological conflict must return
//! [`TxError::BudgetExhausted`] instead of hanging, and a starved processor
//! must escalate to help-first mode within a bounded number of attempts.

use std::time::{Duration, Instant};

use stm_core::contention::{AdaptiveManager, ImmediateRetry};
use stm_core::machine::chaos::{ChaosConfig, ChaosPort, Watchdog};
use stm_core::machine::host::HostMachine;
use stm_core::metrics::TxMetrics;
use stm_core::observe::{RecordingObserver, TxEvent};
use stm_core::ops::StmOps;
use stm_core::program::OpCode;
use stm_core::stm::{Sabotage, StmConfig, TxBudget, TxError, TxOptions, TxSpec};
use stm_core::word::Word;

/// Ops with an extra "boom" program that always panics mid-commit.
fn ops_with_boom(n_procs: usize, config: StmConfig) -> (StmOps, OpCode) {
    StmOps::with_programs(0, 16, n_procs, 8, config, |b| {
        b.register("test.boom", |_: &[Word], _: &[u32], _: &mut [u32]| {
            panic!("boom: deliberate op panic");
        })
    })
}

// ---------------------------------------------------------------------------
// Panic containment
// ---------------------------------------------------------------------------

/// Acceptance: a transaction whose op panics aborts cleanly (all ownerships
/// released) and a concurrent transaction over the same cells subsequently
/// commits.
#[test]
fn panicking_op_releases_ownerships_and_cells_stay_usable() {
    let (ops, boom) = ops_with_boom(2, StmConfig::default());
    let m = HostMachine::new(ops.stm().layout().words_needed(), 2);
    let mut p0 = m.port(0);
    ops.stm().init_cell(&mut p0, 2, 10);
    ops.stm().init_cell(&mut p0, 3, 20);

    let err = ops
        .stm()
        .run(
            &mut p0,
            &TxSpec::new(boom, &[], &[2, 3]),
            &mut TxOptions::new().manager(AdaptiveManager::new(0)),
        )
        .unwrap_err();
    assert_eq!(err, TxError::OpPanicked { attempts: 1 });

    // Another proc's single-shot transaction over the same cells must see
    // free ownerships — it gets exactly one attempt and no retry loop to
    // hide a stranded record behind.
    let mut p1 = m.port(1);
    let out = ops
        .stm()
        .run(
            &mut p1,
            &TxSpec::new(ops.builtins().add, &[5, 5], &[2, 3]),
            &mut TxOptions::new().budget(TxBudget::attempts(1)),
        )
        .expect("cells must be free after the contained panic");
    assert_eq!(out.old, vec![10, 20], "panicked transaction installed nothing");
    assert_eq!(ops.snapshot(&mut p1, &[2, 3]), vec![15, 25]);
}

/// The managed path reports the panic through the observer and metrics.
#[test]
fn op_panic_is_counted_by_metrics() {
    let (ops, boom) = ops_with_boom(1, StmConfig::default());
    let m = HostMachine::new(ops.stm().layout().words_needed(), 1);
    let mut p0 = m.port(0);
    let mut metrics = TxMetrics::new();
    let mut cm = AdaptiveManager::new(0);
    let err = ops
        .stm()
        .run(
            &mut p0,
            &TxSpec::new(boom, &[], &[4]),
            &mut TxOptions::new().observer(&mut metrics).manager(&mut cm),
        )
        .unwrap_err();
    assert!(matches!(err, TxError::OpPanicked { .. }));
    assert_eq!(metrics.op_panics(), 1);
    assert_eq!(metrics.commits(), 0);
}

// ---------------------------------------------------------------------------
// Budgets
// ---------------------------------------------------------------------------

/// Acceptance: a budgeted `Stm::run` returns `BudgetExhausted` under a
/// rigged pathological conflict workload instead of hanging.
#[test]
fn attempt_budget_exhausts_against_an_abandoned_owner() {
    // Helping off: the abandoned transaction can never be completed by the
    // victim, so without a budget this would conflict forever.
    let config = StmConfig { helping: false, ..StmConfig::default() };
    let ops = StmOps::new(0, 16, 2, 8, config);
    let m = HostMachine::new(ops.stm().layout().words_needed(), 2);

    let mut p0 = m.port(0);
    ops.stm().inject_crash_after_acquire(&mut p0, &TxSpec::new(ops.builtins().add, &[1], &[0]));

    let mut p1 = m.port(1);
    let mut cm = ImmediateRetry;
    let err = ops
        .stm()
        .run(
            &mut p1,
            &TxSpec::new(ops.builtins().add, &[1, 1], &[0, 1]),
            &mut TxOptions::new().manager(&mut cm).budget(TxBudget::attempts(16)),
        )
        .unwrap_err();
    assert_eq!(
        err,
        TxError::BudgetExhausted { attempts: 16, cells_contended: 1, cycles_lost: 0 }
    );
}

/// A wall-clock budget bounds the call even when attempts are unlimited.
#[test]
fn wall_budget_returns_promptly_under_permanent_conflict() {
    let config = StmConfig { helping: false, ..StmConfig::default() };
    let ops = StmOps::new(0, 16, 2, 8, config);
    let m = HostMachine::new(ops.stm().layout().words_needed(), 2);

    let mut p0 = m.port(0);
    ops.stm().inject_crash_after_acquire(&mut p0, &TxSpec::new(ops.builtins().add, &[1], &[3]));

    // ImmediateRetry never escalates to help-first, so with helping off the
    // conflict really is permanent (an adaptive manager would rescue itself
    // by helping — tested elsewhere).
    let mut p1 = m.port(1);
    let started = Instant::now();
    let err = ops
        .stm()
        .run(
            &mut p1,
            &TxSpec::new(ops.builtins().add, &[1], &[3]),
            &mut TxOptions::new().budget(TxBudget::wall(Duration::from_millis(50))),
        )
        .unwrap_err();
    assert!(matches!(err, TxError::BudgetExhausted { attempts, .. } if attempts >= 1), "{err:?}");
    assert!(started.elapsed() < Duration::from_secs(10), "must not hang");
}

/// A budgeted uncontended transaction always gets its one attempt, even with
/// a zero budget — budgets bound retries, they cannot starve first tries.
#[test]
fn zero_budget_still_runs_one_attempt() {
    let ops = StmOps::new(0, 8, 1, 4, StmConfig::default());
    let m = HostMachine::new(ops.stm().layout().words_needed(), 1);
    let mut p0 = m.port(0);
    let out = ops
        .stm()
        .run(
            &mut p0,
            &TxSpec::new(ops.builtins().add, &[9], &[5]),
            &mut TxOptions::new().budget(TxBudget::wall(Duration::ZERO)),
        )
        .expect("uncontended first attempt commits within any budget");
    assert_eq!(out.old, vec![0]);
    assert_eq!(out.stats.attempts, 1);
}

// ---------------------------------------------------------------------------
// Starvation escalation (satellite: asserted via TxMetrics)
// ---------------------------------------------------------------------------

/// A proc repeatedly losing `acquire` to the same owner escalates to
/// help-first mode within a bounded number of attempts and then commits —
/// even though the instance-wide helping config is off.
#[test]
fn repeated_losses_to_one_owner_trigger_help_first_within_bound() {
    let config = StmConfig { helping: false, ..StmConfig::default() };
    let ops = StmOps::new(0, 16, 2, 8, config);
    let m = HostMachine::new(ops.stm().layout().words_needed(), 2);

    // Proc 0 acquires cell 7 and vanishes undecided; with helping disabled,
    // proc 1 can only get past it via the starvation escape hatch.
    let mut p0 = m.port(0);
    ops.stm().inject_crash_after_acquire(&mut p0, &TxSpec::new(ops.builtins().add, &[1], &[7]));

    let mut p1 = m.port(1);
    let mut cm = AdaptiveManager::new(1); // default: escalate on the 3rd loss
    let mut metrics = TxMetrics::new();
    let out = ops
        .stm()
        .run(
            &mut p1,
            &TxSpec::new(ops.builtins().add, &[1], &[7]),
            &mut TxOptions::new().observer(&mut metrics).manager(&mut cm),
        )
        .expect("help-first escalation must rescue the starved proc");

    // Escalates on the 3rd consecutive loss; the next attempt fails once
    // more but helps the abandoned transaction to completion; the attempt
    // after that commits. 3 + 1 + 1 = 5.
    assert!(out.stats.attempts <= 5, "bounded convergence, took {}", out.stats.attempts);
    assert!(out.stats.helps >= 1, "the rescue went through helping");
    assert_eq!(metrics.commits(), 1);
    assert!(metrics.starvation_escalations() >= 1, "escalation must be observable");
    assert!(!cm.is_escalated(), "commit resets the manager");
    // The helped (abandoned) transaction committed: its +1 landed too.
    assert_eq!(ops.snapshot(&mut p1, &[7]), vec![2]);
}

// ---------------------------------------------------------------------------
// Sabotage × panic containment (satellite)
// ---------------------------------------------------------------------------

/// `ReleaseBeforeUpdate` sabotage releases before running the op; a panic in
/// the op must not trigger a second release sweep.
#[test]
fn sabotaged_release_plus_panic_does_not_double_release() {
    let config = StmConfig { sabotage: Sabotage::ReleaseBeforeUpdate, ..StmConfig::default() };
    let (ops, boom) = ops_with_boom(2, config);
    let m = HostMachine::new(ops.stm().layout().words_needed(), 2);
    let mut p0 = m.port(0);
    let cells = [1usize, 4, 6];

    let mut rec = RecordingObserver::new();
    let mut cm = AdaptiveManager::new(0);
    let err = ops
        .stm()
        .run(
            &mut p0,
            &TxSpec::new(boom, &[], &cells),
            &mut TxOptions::new().observer(&mut rec).manager(&mut cm),
        )
        .unwrap_err();
    assert!(matches!(err, TxError::OpPanicked { .. }));

    let releases = rec
        .events()
        .iter()
        .filter(|e| matches!(e, TxEvent::Released { .. }))
        .count();
    assert_eq!(releases, cells.len(), "exactly one release sweep: {:?}", rec.events());

    // And the ownerships really are free.
    let mut p1 = m.port(1);
    let out = ops
        .stm()
        .run(
            &mut p1,
            &TxSpec::new(ops.builtins().add, &[1, 1, 1], &cells),
            &mut TxOptions::new().budget(TxBudget::attempts(1)),
        )
        .expect("no stranded ownership after sabotage + panic");
    assert_eq!(out.old, vec![0, 0, 0]);
}

// ---------------------------------------------------------------------------
// Chaos port
// ---------------------------------------------------------------------------

/// Transactions stay exact under random preemption injected at step points,
/// and the watchdog sees every proc make progress.
#[test]
fn chaos_port_preserves_counter_exactness() {
    const PROCS: usize = 4;
    const PER: u64 = 200;
    let ops = StmOps::new(0, 8, PROCS, 4, StmConfig::default());
    let m = HostMachine::new(ops.stm().layout().words_needed(), PROCS);
    let dog = Watchdog::new(PROCS);

    std::thread::scope(|s| {
        for p in 0..PROCS {
            let ops = ops.clone();
            let m = m.clone();
            let handle = dog.handle(p);
            s.spawn(move || {
                // Cheap mix for CI: yields and spins only, no sleeps.
                let cfg = ChaosConfig {
                    sleep_per_mille: 0,
                    ..ChaosConfig::default().with_seed(0xC4A0 + p as u64)
                };
                let mut port = ChaosPort::new(m.port(p), cfg);
                for _ in 0..PER {
                    let _ = ops.fetch_add(&mut port, 2, 1);
                    handle.commit();
                }
                let stats = port.stats();
                assert!(stats.steps > 0, "protocol must pass step points");
            });
        }
    });

    let mut port = m.port(0);
    assert_eq!(ops.snapshot(&mut port, &[2]), vec![(PROCS as u64 * PER) as u32]);
    let mut dog = dog;
    let report = dog.scan();
    assert_eq!(report.total_commits(), PROCS as u64 * PER);
    assert!(!report.any_stalled(), "all procs progressed: {report}");
}

// ---------------------------------------------------------------------------
// Dynamic layer
// ---------------------------------------------------------------------------

#[test]
fn dynamic_body_panic_is_contained_and_stm_reusable() {
    use stm_core::dynamic::DynamicStm;
    let d = DynamicStm::new(0, 8, 1, StmConfig::default());
    let m = HostMachine::new(d.stm().layout().words_needed(), 1);
    let mut port = m.port(0);

    let err = d
        .run(
            &mut port,
            |tx| {
                let v = tx.read(0);
                tx.write(0, v + 1);
                panic!("dynamic body blows up");
            },
            &mut TxOptions::new(),
        )
        .unwrap_err();
    assert_eq!(err, TxError::OpPanicked { attempts: 1 });
    assert_eq!(d.read_cell(&mut port, 0), 0, "aborted body must install nothing");

    let (_, stats) = d
        .run(
            &mut port,
            |tx| {
                let v = tx.read(0);
                tx.write(0, v + 1);
            },
            &mut TxOptions::new(),
        )
        .expect("dynamic STM usable after contained panic");
    assert_eq!(stats.attempts, 1);
    assert_eq!(d.read_cell(&mut port, 0), 1);
}

#[test]
fn dynamic_attempt_budget_bounds_body_executions() {
    use stm_core::dynamic::DynamicStm;
    // Helping off + abandoned owner on cell 0: the validate-and-write commit
    // conflicts forever on the classic path.
    let config = StmConfig { helping: false, ..StmConfig::default() };
    let d = DynamicStm::new(0, 8, 2, config);
    let m = HostMachine::new(d.stm().layout().words_needed(), 2);
    let mut p0 = m.port(0);
    d.ops()
        .stm()
        .inject_crash_after_acquire(&mut p0, &TxSpec::new(d.ops().builtins().add, &[1], &[0]));

    // The adaptive manager escalates to help-first, completes the abandoned
    // transaction, and the dynamic transaction still commits — budget intact.
    let mut p1 = m.port(1);
    let (seen, stats) = d
        .run(
            &mut p1,
            |tx| {
                let v = tx.read(0);
                tx.write(0, v + 10);
                v
            },
            &mut TxOptions::new().manager(AdaptiveManager::new(1)),
        )
        .expect("escalation rescues the dynamic commit");
    // The abandoned add(+1) may land before or after our first read; either
    // way the final value reflects both transactions.
    assert!(seen == 0 || seen == 1, "saw pre- or post-help value, got {seen}");
    assert!(stats.attempts >= 1);
    assert_eq!(d.read_cell(&mut p1, 0), 11);
}

#[test]
fn dynamic_zero_wall_budget_still_commits_uncontended() {
    use stm_core::dynamic::DynamicStm;
    let d = DynamicStm::new(0, 8, 1, StmConfig::default());
    let m = HostMachine::new(d.stm().layout().words_needed(), 1);
    let mut port = m.port(0);
    let ((), stats) = d
        .run(
            &mut port,
            |tx| {
                let v = tx.read(3);
                tx.write(3, v + 2);
            },
            &mut TxOptions::new().budget(TxBudget::wall(Duration::ZERO)),
        )
        .expect("first body + first commit attempt always run");
    assert_eq!(stats.attempts, 1);
    assert_eq!(d.read_cell(&mut port, 3), 2);
}
