//! Liveness: the paper's non-blocking guarantee under fault injection.
//!
//! A lock-based method dies with its lock holder; the Shavit–Touitou STM
//! must not. These tests crash processors at the worst possible points —
//! including *mid-protocol, while holding ownerships* — and assert that the
//! surviving processors finish their work, completing the crashed
//! transaction via helping exactly as the paper prescribes.

use stm_core::stm::{StmConfig, TxOptions, TxSpec};
use stm_sim::arch::{BusModel, MeshModel};
use stm_sim::engine::SimPort;
use stm_sim::explore::sweep;
use stm_sim::harness::StmSim;
use stm_structures::counter::Counter;
use stm_structures::Method;

/// A processor crashes *after acquiring ownership* of the hot cell with an
/// undecided transaction. Every survivor that conflicts must help the dead
/// transaction to completion: its increment commits, and the system keeps
/// going.
#[test]
fn crashed_transaction_is_completed_by_helpers() {
    const PROCS: usize = 4;
    const PER: u32 = 25;
    sweep(
        10,
        |seed| {
            let sim = StmSim::new(PROCS, 2, 2, StmConfig::default()).seed(seed).jitter(3);
            sim.run(BusModel::for_procs(PROCS), |p, ops| {
                move |mut port: SimPort| {
                    if p == 0 {
                        // Crash mid-protocol: record published, ownership of
                        // cell 0 acquired, outcome undecided.
                        let builtins = ops.builtins();
                        let cells = [0usize];
                        ops.stm().inject_crash_after_acquire(
                            &mut port,
                            &TxSpec::new(builtins.add, &[1], &cells),
                        );
                        return;
                    }
                    for _ in 0..PER {
                        ops.fetch_add(&mut port, 0, 1);
                    }
                }
            })
        },
        |seed, report| {
            let sim = StmSim::new(PROCS, 2, 2, StmConfig::default());
            // Survivors' increments all land, PLUS the dead processor's
            // transaction, which helpers must have committed on its behalf.
            assert_eq!(
                sim.cell_value(report, 0),
                (PROCS as u32 - 1) * PER + 1,
                "seed {seed}: crashed transaction not completed exactly once"
            );
        },
    );
}

/// Same crash, but the victim owns one cell of a multi-word transaction
/// spanning the survivors' working set.
#[test]
fn crashed_multiword_transaction_is_completed() {
    const PROCS: usize = 5;
    const PER: u32 = 20;
    sweep(
        10,
        |seed| {
            let sim = StmSim::new(PROCS, 4, 4, StmConfig::default()).seed(seed).jitter(3);
            sim.run(MeshModel::for_procs(PROCS), |p, ops| {
                move |mut port: SimPort| {
                    if p == 0 {
                        let builtins = ops.builtins();
                        let cells = [0usize, 2, 3];
                        ops.stm().inject_crash_after_acquire(
                            &mut port,
                            &TxSpec::new(builtins.add, &[10, 20, 30], &cells),
                        );
                        return;
                    }
                    for i in 0..PER {
                        ops.fetch_add(&mut port, (i as usize + p) % 4, 1);
                    }
                }
            })
        },
        |seed, report| {
            let sim = StmSim::new(PROCS, 4, 4, StmConfig::default());
            let cells = sim.all_cells(report);
            let survivor_incs: u32 = cells.iter().sum::<u32>() - (10 + 20 + 30);
            assert_eq!(
                survivor_incs,
                (PROCS as u32 - 1) * PER,
                "seed {seed}: survivor work lost (cells {cells:?})"
            );
        },
    );
}

/// With helping disabled (the ablation), a crashed undecided transaction
/// wedges the cell forever — demonstrating that helping, not luck, provides
/// the liveness. The run must end in a structured watchdog violation, with
/// the victim's ownership still leaked and the survivors' work lost.
#[test]
fn without_helping_a_crash_wedges_the_system() {
    use stm_sim::engine::Violation;

    const PROCS: usize = 3;
    let config = StmConfig { helping: false, ..Default::default() };
    let sim = StmSim::new(PROCS, 2, 2, config)
        .seed(1)
        .jitter(2)
        .max_cycles(200_000)
        .trace(100_000);
    let report = sim.run(BusModel::for_procs(PROCS), |p, ops| {
        move |mut port: SimPort| {
            if p == 0 {
                let builtins = ops.builtins();
                let cells = [0usize];
                ops.stm()
                    .inject_crash_after_acquire(&mut port, &TxSpec::new(builtins.add, &[1], &cells));
                return;
            }
            ops.fetch_add(&mut port, 0, 1); // can never commit
        }
    });
    match report.violation {
        Some(Violation::Watchdog { at, limit, .. }) => {
            assert_eq!(limit, 200_000);
            assert!(at > limit, "watchdog trips only past the limit");
        }
        ref other => panic!("expected a watchdog violation, got {other:?}"),
    }
    // The liveness monitor reaches the same verdict from the report.
    assert!(
        stm_sim::liveness::LivenessChecker::with_budget(50_000).check(&report).is_some(),
        "the liveness checker must flag the wedged run"
    );
    // The dead transaction's ownership is never released: that is the wedge.
    assert_eq!(sim.leaked_ownerships(&report), vec![0]);
    assert_eq!(sim.cell_value(&report, 0), 0, "no survivor increment can commit");
}

/// The blocking baselines do NOT survive a crash inside the critical
/// section — the control experiment for the paper's headline claim.
#[test]
fn lock_based_counter_wedges_on_crash_in_critical_section() {
    use stm_core::machine::MemPort;
    use stm_sim::engine::{SimConfig, Simulation, Violation};
    use stm_sync::TtasLock;

    let lock = TtasLock::new(0);
    let report = Simulation::new(
        SimConfig { n_words: 2, seed: 3, jitter: 2, max_cycles: 200_000, ..Default::default() },
        BusModel::for_procs(2),
    )
    .run(2, |p| {
        move |mut port: SimPort| {
            if p == 0 {
                lock.lock(&mut port);
                return; // die holding the lock
            }
            lock.with(&mut port, |port| {
                let v = port.read(1);
                port.write(1, v + 1);
            });
        }
    });
    match report.violation {
        Some(Violation::Watchdog { proc, .. }) => {
            assert_eq!(proc, 1, "the survivor is the one spinning on the orphaned lock");
        }
        ref other => panic!("expected a watchdog violation, got {other:?}"),
    }
    assert_eq!(report.memory[1], 0, "the survivor's critical section never ran");
}

/// Heavy symmetric contention with helping: the system always makes global
/// progress (no livelock across any tested schedule), and per-call
/// statistics show helping actually happened.
#[test]
fn helping_fires_and_preserves_progress_under_symmetric_conflicts() {
    const PROCS: usize = 6;
    const PER: u32 = 15;
    let helps_seen = std::sync::atomic::AtomicU64::new(0);
    sweep(
        8,
        |seed| {
            let sim = StmSim::new(PROCS, 2, 2, StmConfig::default()).seed(seed).jitter(5);
            let helps_seen = &helps_seen;
            sim.run(BusModel::for_procs(PROCS), |p, ops| {
                move |mut port: SimPort| {
                    let builtins = ops.builtins();
                    for i in 0..PER {
                        // Alternate between two orderings of a 2-cell
                        // transaction to maximize symmetric conflicts.
                        let cells = if (p + i as usize).is_multiple_of(2) { [0, 1] } else { [1, 0] };
                        let out = ops
                            .stm()
                            .run(
                                &mut port,
                                &TxSpec::new(builtins.add, &[1, 1], &cells),
                                &mut TxOptions::new(),
                            )
                            .unwrap();
                        helps_seen
                            .fetch_add(out.stats.helps, std::sync::atomic::Ordering::Relaxed);
                    }
                }
            })
        },
        |seed, report| {
            let sim = StmSim::new(PROCS, 2, 2, StmConfig::default());
            let cells = sim.all_cells(report);
            assert_eq!(cells[0], PROCS as u32 * PER, "seed {seed}");
            assert_eq!(cells[1], PROCS as u32 * PER, "seed {seed}");
        },
    );
    assert!(
        helps_seen.load(std::sync::atomic::Ordering::Relaxed) > 0,
        "contended schedules should exercise the helping path at least once"
    );
}

/// All structure methods classified non-blocking survive a crashed (early
/// returning, pre-protocol) processor; this is the weaker crash model every
/// method must pass.
#[test]
fn early_crash_never_blocks_any_nonblocking_method() {
    const PROCS: usize = 3;
    for method in [Method::Stm, Method::Herlihy] {
        let counter = Counter::new(method, 0, PROCS);
        let sim_words = Counter::words_needed(method, PROCS);
        let report = stm_sim::engine::Simulation::new(
            stm_sim::engine::SimConfig {
                n_words: sim_words,
                seed: 2,
                jitter: 2,
                max_cycles: 1 << 33,
                init: counter.init_words(0),
                ..Default::default()
            },
            BusModel::for_procs(PROCS),
        )
        .run(PROCS, |p| {
            let counter = counter.clone();
            move |mut port: SimPort| {
                let mut h = counter.handle(&port);
                if p == 0 {
                    h.increment(&mut port);
                    return;
                }
                for _ in 0..40 {
                    h.increment(&mut port);
                }
            }
        });
        // decode: re-run a read on the final image
        let sim_cfg = stm_sim::engine::SimConfig {
            n_words: report.memory.len(),
            init: report.memory.iter().copied().enumerate().collect(),
            ..Default::default()
        };
        let out = std::sync::Arc::new(std::sync::atomic::AtomicU32::new(0));
        let o2 = std::sync::Arc::clone(&out);
        let c2 = counter.clone();
        let _ = stm_sim::engine::Simulation::new(sim_cfg, stm_sim::arch::UniformModel::new(1, 1))
            .run(1, move |_| {
                let c2 = c2.clone();
                let o2 = std::sync::Arc::clone(&o2);
                move |mut port: SimPort| {
                    let mut h = c2.handle(&port);
                    o2.store(h.read(&mut port), std::sync::atomic::Ordering::SeqCst);
                }
            });
        assert_eq!(out.load(std::sync::atomic::Ordering::SeqCst), 81, "{method}");
    }
}
