//! Blocking composition end to end on the simulated machines: wakeup
//! safety, idle cost, and crash-while-parked.
//!
//! The property that makes `retry` sound is **no lost wakeups**: a parked
//! transaction must be woken by every committing writer that overlaps its
//! read set (see `docs/protocol.md` §14 for the register-then-revalidate
//! argument). On the simulator a lost wakeup is not a flaky hang but a
//! definite verdict — the scheduler halts with a structured
//! [`Violation::RetryDeadlock`] the moment every live processor is parked —
//! so these tests can sweep seeded schedules and fault plans and simply
//! assert the verdict never fires while work remains.
//!
//! Like the crash matrix in `fault_injection.rs`, seeds per point default
//! low and are raised by the nightly CI sweep via `FAULT_MATRIX_SEEDS`.

use proptest::prelude::*;
use stm_core::dynamic::DynamicStm;
use stm_core::machine::MemPort;
use stm_core::ops::StmOps;
use stm_core::step::StepKind;
use stm_core::stm::{StmConfig, TxOptions};
use stm_sim::engine::{SimPort, SimReport, Violation};
use stm_sim::faults::FaultPlan;
use stm_sim::trace::{TraceEvent, TraceKind};
use stm_sim::{BusModel, MeshModel, StmSim};
use stm_structures::blocking::BoundedQueue;

const CAP: usize = 3;
const PROCS: usize = 3;

/// Seeds per point: 10 by default, raised by the nightly CI sweep via the
/// `FAULT_MATRIX_SEEDS` environment variable (same knob as the crash
/// matrix).
fn matrix_seeds() -> u64 {
    std::env::var("FAULT_MATRIX_SEEDS").ok().and_then(|s| s.parse().ok()).unwrap_or(10)
}

/// Two producers feeding one blocking consumer through a capacity-[`CAP`]
/// queue. Pushes park when the queue is full and pops park when it is
/// empty, so wakeups flow in both directions. Returns the finished report
/// plus the consumer's popped sum.
fn producer_consumer(
    arch: usize,
    seed: u64,
    per_producer: u64,
    gap: u64,
    plan: FaultPlan,
) -> (StmSim, SimReport) {
    let cells = BoundedQueue::cells_needed(CAP);
    let sim = StmSim::new(PROCS, cells, cells, StmConfig::default())
        .seed(seed)
        .jitter(4)
        .trace(1 << 20)
        .faults(plan);
    let queue = BoundedQueue::new(0, CAP);
    let body = |p: usize, ops: StmOps| {
        move |mut port: SimPort| {
            let stm = DynamicStm::from_ops(ops);
            if p < 2 {
                // Producers: staggered paced pushes of the value 1.
                for _ in 0..per_producer {
                    port.delay(gap * (p as u64 + 1));
                    queue
                        .push(&stm, &mut port, 1, &mut TxOptions::new())
                        .expect("unlimited budget");
                }
            } else {
                for _ in 0..2 * per_producer {
                    let v = queue
                        .pop(&stm, &mut port, &mut TxOptions::new())
                        .expect("unlimited budget");
                    assert_eq!(v, 1, "queue slots must carry the pushed value");
                }
            }
        }
    };
    let report = match arch {
        0 => sim.run(BusModel::for_procs(PROCS), body),
        _ => sim.run(MeshModel::for_procs(PROCS), body),
    };
    (sim, report)
}

/// Walk `proc`'s trace events in time order and enforce the park protocol:
/// every park is closed by a wake, and **no event of any kind** sits
/// between them — a parked processor takes zero scheduler steps. Returns
/// `(parks, wakes)`.
fn check_park_protocol(report: &SimReport, proc: usize, ctx: &str) -> (u64, u64) {
    let mut events: Vec<&TraceEvent> = report.trace.iter().filter(|e| e.proc == proc).collect();
    events.sort_by_key(|e| e.time); // stable: simultaneous events keep recording order
    let (mut parks, mut wakes) = (0u64, 0u64);
    let mut parked_at: Option<u64> = None;
    for e in events {
        match e.kind {
            TraceKind::Park(_) => {
                assert!(parked_at.is_none(), "{ctx}: P{proc} parked twice without a wake");
                parked_at = Some(e.time);
                parks += 1;
            }
            TraceKind::Wake(_) => {
                let t = parked_at.take().unwrap_or_else(|| {
                    panic!("{ctx}: P{proc} woke at t={} without a park", e.time)
                });
                assert!(e.time >= t, "{ctx}: P{proc} woke before it parked");
                wakes += 1;
            }
            _ => assert!(
                parked_at.is_none(),
                "{ctx}: P{proc} took a scheduler step while parked: {:?} at t={}",
                e.kind,
                e.time
            ),
        }
    }
    assert!(parked_at.is_none(), "{ctx}: P{proc} still parked at the end of the trace");
    (parks, wakes)
}

fn check_no_lost_wakeups(sim: &StmSim, report: &SimReport, per_producer: u64, ctx: &str) {
    // A lost wakeup surfaces as RetryDeadlock (everyone parked) or, if some
    // processor never parks, as the watchdog tripping; either way it is a
    // violation, never a hang.
    assert_eq!(report.violation, None, "{ctx}");
    assert_eq!(report.trace_dropped, 0, "{ctx}: trace overflow");
    // Conservation: both indices fully advanced and the queue drained.
    let items = 2 * per_producer;
    assert_eq!(u64::from(sim.cell_value(report, 0)), items, "{ctx}: head index");
    assert_eq!(u64::from(sim.cell_value(report, 1)), items, "{ctx}: tail index");
    assert!(sim.leaked_ownerships(report).is_empty(), "{ctx}: leaked ownership");
    // Park protocol on every processor (producers can park too, on a full
    // queue). Zero steps while parked, and no processor left parked.
    for p in 0..PROCS {
        check_park_protocol(report, p, ctx);
    }
}

#[test]
fn no_lost_wakeups_across_seeds_on_bus_and_mesh() {
    for arch in 0..2 {
        for seed in 0..matrix_seeds() {
            let (sim, report) = producer_consumer(arch, seed, 8, 700, FaultPlan::new());
            let ctx = format!("arch{arch}/seed{seed}");
            check_no_lost_wakeups(&sim, &report, 8, &ctx);
        }
    }
}

#[test]
fn consumer_genuinely_parks_and_every_wakeup_is_a_watched_write() {
    // With a gap this wide the consumer must actually park (a point that
    // never waits proves nothing), and every one of its wakeups must be
    // attributable to a write on a cell it watched — the trace records the
    // waking address, which must be one of the queue's head/tail/slot cells.
    let (sim, report) = producer_consumer(0, 3, 8, 1500, FaultPlan::new());
    check_no_lost_wakeups(&sim, &report, 8, "paced");
    let (parks, wakes) = check_park_protocol(&report, 2, "paced");
    assert!(parks > 0, "gap too short: the consumer never parked");
    assert_eq!(parks, wakes, "every park must be closed by exactly one wake");
    let layout_cells: Vec<usize> = (0..BoundedQueue::cells_needed(CAP))
        .map(|c| sim.ops().stm().layout().cell(c))
        .collect();
    for e in report.trace.iter().filter(|e| e.proc == 2) {
        if let TraceKind::Wake(addr) = e.kind {
            assert!(
                layout_cells.contains(&addr),
                "wakeup from address {addr}, which the consumer never watched"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The wakeup-safety property, randomized: whatever the schedule seed,
    /// pacing, and load, a parked transaction is woken by every committing
    /// writer that overlaps its read set — so the pipeline always drains,
    /// with zero scheduler steps taken while parked. Exercises both park
    /// directions (pop on empty, push on full) on both machines.
    #[test]
    fn parked_transactions_always_drain(
        seed in 0u64..10_000,
        arch in 0usize..2,
        per_producer in 2u64..10,
        gap in 0u64..1200,
    ) {
        let (sim, report) = producer_consumer(arch, seed, per_producer, gap, FaultPlan::new());
        let ctx = format!("arch{arch}/seed{seed}/n{per_producer}/gap{gap}");
        check_no_lost_wakeups(&sim, &report, per_producer, &ctx);
    }
}

#[test]
fn threshold_waiter_is_woken_by_each_overlapping_increment() {
    // The sharpest form of "woken by every overlapping writer": a consumer
    // blocks until a counter reaches TARGET while a producer increments it
    // once per wide gap. Each increment overlaps the waiter's read set, so
    // each must wake it; the waiter re-checks, sees the count still short,
    // and parks again. The park/wake tally must therefore track the
    // increments one-for-one — a single lost wakeup would strand it parked
    // (RetryDeadlock) the moment the producer finishes.
    const TARGET: u32 = 6;
    let sim = StmSim::new(2, 1, 1, StmConfig::default()).seed(11).jitter(3).trace(1 << 20);
    let report = sim.run(BusModel::for_procs(2), |p, ops| {
        move |mut port: SimPort| {
            let stm = DynamicStm::from_ops(ops);
            if p == 0 {
                for _ in 0..TARGET {
                    port.delay(2_000);
                    let _ = stm.run(
                        &mut port,
                        |tx| {
                            let v = tx.read(0);
                            tx.write(0, v + 1);
                        },
                        &mut TxOptions::new(),
                    );
                }
            } else {
                let (seen, _) = stm
                    .run_blocking(
                        &mut port,
                        |tx| {
                            let v = tx.read(0);
                            if v < TARGET {
                                return tx.retry();
                            }
                            Ok(v)
                        },
                        &mut TxOptions::new(),
                    )
                    .expect("unlimited budget");
                assert_eq!(seen, TARGET);
            }
        }
    });
    assert_eq!(report.violation, None);
    assert_eq!(sim.cell_value(&report, 0), TARGET);
    let (parks, wakes) = check_park_protocol(&report, 1, "threshold");
    assert_eq!(parks, wakes);
    assert_eq!(
        parks, TARGET as u64,
        "each of the {TARGET} overlapping increments must wake the waiter exactly once"
    );
}

// ---------------------------------------------------------------------------
// Crash-while-parked rows of the fault matrix
// ---------------------------------------------------------------------------

#[test]
fn crashing_the_parked_consumer_leaves_producers_unharmed() {
    // The consumer is crashed at its first RetryPark announcement — it dies
    // *while parked*. Its park registration must not wedge the engine or
    // leak protocol state; the producers (sized to never fill the queue)
    // finish every push.
    let plan = FaultPlan::new().crash_at_step(2, StepKind::RetryPark, None);
    for arch in 0..2 {
        for seed in 0..matrix_seeds() {
            // 1 item per producer: 2 pushes into capacity 3 never park the
            // producers, so the run completes without the dead consumer.
            let (sim, report) = producer_consumer(arch, seed, 1, 800, plan.clone());
            let ctx = format!("arch{arch}/seed{seed}");
            assert_eq!(report.crashed, vec![2], "{ctx}: exactly the consumer crashed");
            assert_eq!(report.violation, None, "{ctx}");
            assert_eq!(sim.cell_value(&report, 1), 2, "{ctx}: both pushes landed");
            assert!(sim.leaked_ownerships(&report).is_empty(), "{ctx}");
        }
    }
}

#[test]
fn survivors_parked_behind_a_crashed_consumer_get_a_structured_verdict() {
    // Harsher row: the consumer dies parked and the producers then overfill
    // the queue, so they park with nobody left to wake them. That is a real
    // deadlock — and it must be *reported* as RetryDeadlock naming the
    // parked producers, not spin or hang.
    let plan = FaultPlan::new().crash_at_step(2, StepKind::RetryPark, None);
    let (_, report) = producer_consumer(0, 5, 4, 300, plan);
    assert_eq!(report.crashed, vec![2]);
    match &report.violation {
        Some(Violation::RetryDeadlock { parked, .. }) => {
            assert!(!parked.is_empty(), "verdict must name the stranded producers");
            assert!(parked.iter().all(|p| *p < 2), "only producers can be stranded here");
        }
        other => panic!("expected RetryDeadlock, got {other:?}"),
    }
}

#[test]
fn crash_just_before_the_wakeup_write_still_wakes_via_helping() {
    // The writer whose commit should wake the parked consumer is crashed at
    // its decision point (after publishing, before installing). The paper's
    // helping rule says a conflicting survivor completes the transaction —
    // and the completion's install must still fire the wakeup. The second
    // producer is that survivor.
    let plan = FaultPlan::new().crash_at_step(0, StepKind::Acquired, Some(0));
    for arch in 0..2 {
        for seed in 0..matrix_seeds() {
            let (sim, report) = producer_consumer(arch, seed, 2, 600, plan.clone());
            let ctx = format!("arch{arch}/seed{seed}");
            assert_eq!(report.crashed, vec![0], "{ctx}: exactly the writer crashed");
            // The consumer can never pop its full quota (the dead
            // producer's later pushes are lost), so the run ends with
            // the consumer parked and everyone else done — the
            // structured verdict, not a hang. What must NOT happen is
            // the consumer stranded while items sit in the queue: head
            // must have consumed everything tail ever published.
            assert_eq!(
                sim.cell_value(&report, 0),
                sim.cell_value(&report, 1),
                "{ctx}: consumer stranded with items in the queue — lost wakeup"
            );
            assert!(sim.leaked_ownerships(&report).is_empty(), "{ctx}");
            match &report.violation {
                Some(Violation::RetryDeadlock { parked, .. }) => {
                    assert_eq!(parked, &vec![2], "{ctx}: only the consumer waits forever")
                }
                other => panic!("{ctx}: expected RetryDeadlock, got {other:?}"),
            }
        }
    }
}
