//! The dynamic-transaction extension under concurrency, on both machines,
//! including interoperation with static transactions on the same cells.

use stm_core::dynamic::DynamicStm;
use stm_core::machine::host::HostMachine;
use stm_core::stm::{StmConfig, TxOptions};
use stm_sim::arch::{BusModel, MeshModel};
use stm_sim::engine::{SimConfig, SimPort, Simulation};
use stm_sim::explore::sweep;

fn make_sim_config(d: &DynamicStm, seed: u64, init: &[(usize, u32)]) -> SimConfig {
    let l = d.stm().layout();
    SimConfig {
        n_words: l.words_needed(),
        seed,
        jitter: 4,
        init: init.iter().map(|&(c, v)| (l.cell(c), stm_core::word::pack_cell(0, v))).collect(),
        ..Default::default()
    }
}

#[test]
fn dynamic_counters_exact_across_schedules() {
    const PROCS: usize = 4;
    const PER: u32 = 15;
    let d = DynamicStm::new(0, 4, PROCS, StmConfig::default());
    sweep(
        8,
        |seed| {
            let d = d.clone();
            Simulation::new(make_sim_config(&d, seed, &[]), BusModel::for_procs(PROCS)).run(
                PROCS,
                |p| {
                    let d = d.clone();
                    move |mut port: SimPort| {
                        for i in 0..PER {
                            d.run(
                                &mut port,
                                |tx| {
                                    let c = (p + i as usize) % 2;
                                    let v = tx.read(c);
                                    tx.write(c, v + 1);
                                },
                                &mut TxOptions::new(),
                            )
                            .unwrap();
                        }
                    }
                },
            )
        },
        |seed, report| {
            let l = d.stm().layout();
            let total: u32 = (0..2)
                .map(|c| stm_core::word::cell_value(report.memory[l.cell(c)]))
                .sum();
            assert_eq!(total, PROCS as u32 * PER, "seed {seed}");
        },
    );
}

#[test]
fn dynamic_pointer_chase_conserves_on_mesh() {
    // Cells 0..3: ring of next-pointers; cells 4..8: balances. Transactions
    // discover their accounts by chasing pointers (data-dependent data set).
    const PROCS: usize = 4;
    let d = DynamicStm::new(0, 8, PROCS, StmConfig::default());
    let init = [(0usize, 1u32), (1, 2), (2, 3), (3, 0), (4, 25), (5, 25), (6, 25), (7, 25)];
    sweep(
        6,
        |seed| {
            let d = d.clone();
            Simulation::new(make_sim_config(&d, seed, &init), MeshModel::for_procs(PROCS)).run(
                PROCS,
                |p| {
                    let d = d.clone();
                    move |mut port: SimPort| {
                        for i in 0..12 {
                            d.run(
                                &mut port,
                                |tx| {
                                    let start = (p + i) % 4;
                                    let a = tx.read(start) as usize % 4;
                                    let b = tx.read(a) as usize % 4;
                                    if a == b {
                                        return;
                                    }
                                    let va = tx.read(4 + a);
                                    if va > 0 {
                                        let vb = tx.read(4 + b);
                                        tx.write(4 + a, va - 1);
                                        tx.write(4 + b, vb + 1);
                                    }
                                },
                                &mut TxOptions::new(),
                            )
                            .unwrap();
                        }
                    }
                },
            )
        },
        |seed, report| {
            let l = d.stm().layout();
            let total: u32 = (4..8)
                .map(|c| stm_core::word::cell_value(report.memory[l.cell(c)]))
                .sum();
            assert_eq!(total, 100, "seed {seed}: balance not conserved");
        },
    );
}

#[test]
fn dynamic_and_static_transactions_interoperate_on_host() {
    // Half the threads use dynamic transactions, half use static ones, all
    // incrementing the same pair of cells in lockstep.
    const PROCS: usize = 4;
    const PER: u32 = 400;
    let d = DynamicStm::new(0, 2, PROCS, StmConfig::default());
    let machine = HostMachine::new(d.stm().layout().words_needed(), PROCS);
    std::thread::scope(|s| {
        for p in 0..PROCS {
            let d = d.clone();
            let machine = machine.clone();
            s.spawn(move || {
                let mut port = machine.port(p);
                for _ in 0..PER {
                    if p % 2 == 0 {
                        // NB: the body may transiently observe a != b (the
                        // optimistic reads are not mutually atomic); the
                        // commit-time validation rejects those attempts, so
                        // the committed effect is still a lockstep +1/+1.
                        d.run(
                            &mut port,
                            |tx| {
                                let a = tx.read(0);
                                let b = tx.read(1);
                                tx.write(0, a + 1);
                                tx.write(1, b + 1);
                            },
                            &mut TxOptions::new(),
                        )
                        .unwrap();
                    } else {
                        // Static 2-cell add through the same instance's
                        // underlying static STM (shared cells).
                        let cells = [0usize, 1];
                        let deltas = [1u32, 1];
                        let old = d.ops().fetch_add_many(&mut port, &cells, &deltas);
                        assert_eq!(old[0], old[1], "pair must advance in lockstep");
                    }
                }
            });
        }
    });
    let mut port = machine.port(0);
    assert_eq!(d.read_cell(&mut port, 0), PROCS as u32 * PER);
    assert_eq!(d.read_cell(&mut port, 1), PROCS as u32 * PER);
}
