//! Cross-crate correctness: committed transactions are serializable.
//!
//! These tests run adversarial workloads on the deterministic simulator
//! across many seeded schedules ([`stm_sim::explore::sweep`]) and check the
//! core safety properties of the Shavit–Touitou protocol:
//!
//! * **atomicity/serializability** — the final state equals a sequential
//!   application of the committed transactions (checked via invariants that
//!   only hold if every multi-word commit was all-or-nothing);
//! * **quiescence** — after all processors finish, every ownership word is
//!   free;
//! * **exactness** — counters equal exact operation counts (no lost or
//!   duplicated commits, even with helping replaying work).

use stm_core::ops::StmOps;
use stm_core::stm::{StmConfig, TxOptions, TxSpec};
use stm_core::word::Word;
use stm_sim::arch::{BusModel, MeshModel};
use stm_sim::engine::SimPort;
use stm_sim::explore::sweep;
use stm_sim::harness::StmSim;

const SEEDS: u64 = 12;

#[test]
fn counter_is_exact_across_schedules_bus() {
    const PROCS: usize = 5;
    const PER: u32 = 40;
    let report = sweep(
        SEEDS,
        |seed| {
            let sim = StmSim::new(PROCS, 2, 2, StmConfig::default()).seed(seed).jitter(4);
            sim.run(BusModel::for_procs(PROCS), |_p, ops| {
                move |mut port: SimPort| {
                    for _ in 0..PER {
                        ops.fetch_add(&mut port, 0, 1);
                    }
                }
            })
        },
        |seed, report| {
            let sim = StmSim::new(PROCS, 2, 2, StmConfig::default());
            assert_eq!(
                sim.cell_value(report, 0),
                PROCS as u32 * PER,
                "seed {seed}: lost or duplicated increments"
            );
            assert!(sim.leaked_ownerships(report).is_empty(), "seed {seed}: leaked ownership");
        },
    );
    assert!(report.distinct_outcomes >= 1);
}

#[test]
fn transfers_conserve_and_quiesce_mesh() {
    const PROCS: usize = 6;
    const CELLS: usize = 10;
    const ROUNDS: usize = 30;
    sweep(
        SEEDS,
        |seed| {
            let mut sim = StmSim::new(PROCS, CELLS, 4, StmConfig::default()).seed(seed).jitter(4);
            for c in 0..CELLS {
                sim.init_cell(c, 100);
            }
            sim.run(MeshModel::for_procs(PROCS), |p, ops| {
                move |mut port: SimPort| {
                    for i in 0..ROUNDS {
                        let a = (p * 3 + i) % CELLS;
                        let b = (p + i * 7) % CELLS;
                        if a == b {
                            continue;
                        }
                        let cells = [a, b];
                        let deltas = [3u32.wrapping_neg(), 3];
                        ops.fetch_add_many(&mut port, &cells, &deltas);
                    }
                }
            })
        },
        |seed, report| {
            let sim = StmSim::new(PROCS, CELLS, 4, StmConfig::default());
            let total: u64 = sim.all_cells(report).iter().map(|&v| v as u64).sum();
            assert_eq!(total, CELLS as u64 * 100, "seed {seed}: money created/destroyed");
            assert!(sim.leaked_ownerships(report).is_empty(), "seed {seed}");
        },
    );
}

#[test]
fn mwcas_lockstep_pair_advances_atomically() {
    // Cells 0 and 1 must always advance together; cell 2 counts successes.
    const PROCS: usize = 4;
    sweep(
        SEEDS,
        |seed| {
            let sim = StmSim::new(PROCS, 3, 3, StmConfig::default()).seed(seed).jitter(4);
            sim.run(BusModel::for_procs(PROCS), |_p, ops| {
                move |mut port: SimPort| {
                    let mut done = 0;
                    while done < 10 {
                        let snap = ops.snapshot(&mut port, &[0, 1]);
                        assert_eq!(snap[0], snap[1], "pair out of lockstep mid-run");
                        let v = snap[0];
                        if ops.mwcas(&mut port, &[(0, v, v + 1), (1, v, v + 1)]).is_ok() {
                            ops.fetch_add(&mut port, 2, 1);
                            done += 1;
                        }
                    }
                }
            })
        },
        |seed, report| {
            let sim = StmSim::new(PROCS, 3, 3, StmConfig::default());
            let cells = sim.all_cells(report);
            assert_eq!(cells[0], cells[1], "seed {seed}: pair desynchronized");
            assert_eq!(cells[0], PROCS as u32 * 10, "seed {seed}: wrong success count");
            assert_eq!(cells[2], PROCS as u32 * 10, "seed {seed}");
        },
    );
}

#[test]
fn guarded_transactions_never_go_negative() {
    // A guarded decrement (only if > 0) over random cells: counts must never
    // wrap below zero — a torn or doubly-applied commit would.
    const PROCS: usize = 5;
    const CELLS: usize = 4;
    let build = |seed: u64| {
        let (mut sim, dec) = StmSim::with_programs(
            PROCS,
            CELLS,
            2,
            StmConfig::default(),
            |b| {
                b.register("guarded.dec", |_: &[Word], old: &[u32], new: &mut [u32]| {
                    if old[0] > 0 {
                        new[0] = old[0] - 1;
                    }
                })
            },
        );
        sim = sim.seed(seed).jitter(4);
        for c in 0..CELLS {
            sim.init_cell(c, 8);
        }
        (sim, dec)
    };
    sweep(
        SEEDS,
        |seed| {
            let (sim, dec) = build(seed);
            sim.run(BusModel::for_procs(PROCS), |p, ops| {
                move |mut port: SimPort| {
                    for i in 0..25 {
                        let c = (p + i) % CELLS;
                        let cells = [c];
                        let _ = ops
                            .run(&mut port, &TxSpec::new(dec, &[], &cells), &mut TxOptions::new())
                            .unwrap();
                    }
                }
            })
        },
        |seed, report| {
            let (sim, _) = build(seed);
            for (c, v) in sim.all_cells(report).iter().enumerate() {
                assert!(*v <= 8, "seed {seed}: cell {c} went negative (wrapped to {v})");
            }
        },
    );
}

#[test]
fn snapshot_reads_are_consistent_under_writers() {
    // Writers keep two cells equal (via 2-cell add); a reader snapshotting
    // them must never see them differ.
    const PROCS: usize = 4;
    sweep(
        SEEDS,
        |seed| {
            let sim = StmSim::new(PROCS, 2, 2, StmConfig::default()).seed(seed).jitter(4);
            sim.run(BusModel::for_procs(PROCS), |p, ops| {
                move |mut port: SimPort| {
                    if p == 0 {
                        // Reader: atomic snapshots must be torn-free.
                        for _ in 0..60 {
                            let snap = ops.snapshot(&mut port, &[0, 1]);
                            assert_eq!(snap[0], snap[1], "torn snapshot");
                        }
                    } else {
                        for _ in 0..30 {
                            let cells = [0, 1];
                            let deltas = [1, 1];
                            ops.fetch_add_many(&mut port, &cells, &deltas);
                        }
                    }
                }
            })
        },
        |seed, report| {
            let sim = StmSim::new(PROCS, 2, 2, StmConfig::default());
            let cells = sim.all_cells(report);
            assert_eq!(cells[0], cells[1], "seed {seed}");
            assert_eq!(cells[0], (PROCS as u32 - 1) * 30, "seed {seed}");
        },
    );
}

/// The strongest check: record every committed transaction's (data set,
/// observed old values + stamps, computed new values) while a contended
/// multi-cell workload runs, then verify the whole history with
/// [`stm_core::history::HistoryChecker`] — per-cell value chains must hold
/// and the precedence graph must be acyclic, i.e. the execution is
/// serializable, with a witness order produced.
#[test]
fn recorded_histories_are_serializable() {
    use stm_core::history::{CommitRecord, HistoryChecker};

    const PROCS: usize = 5;
    const CELLS: usize = 4;
    const PER: usize = 20;
    for seed in 0..8u64 {
        let records = std::sync::Mutex::new(Vec::<CommitRecord>::new());
        let next_id = std::sync::atomic::AtomicUsize::new(0);
        let sim = StmSim::new(PROCS, CELLS, 3, StmConfig::default()).seed(seed).jitter(4);
        let builtins = sim.ops().builtins();
        let report = sim.run(BusModel::for_procs(PROCS), |p, ops| {
            let records = &records;
            let next_id = &next_id;
            move |mut port: SimPort| {
                for i in 0..PER {
                    // 2-cell wrapping adds with per-op deltas.
                    let a = (p + i) % CELLS;
                    let b = (p + i + 1 + i % (CELLS - 1)) % CELLS;
                    if a == b {
                        continue;
                    }
                    let cells = [a, b];
                    let deltas = [1 + (i as u32 % 5), 7 + (p as u32)];
                    let params = [deltas[0] as Word, deltas[1] as Word];
                    let out = ops
                        .stm()
                        .run(
                            &mut port,
                            &TxSpec::new(builtins.add, &params, &cells),
                            &mut TxOptions::new(),
                        )
                        .unwrap();
                    let new_values: Vec<u32> = out
                        .old
                        .iter()
                        .zip(&deltas)
                        .map(|(&o, &d)| o.wrapping_add(d))
                        .collect();
                    records.lock().unwrap().push(CommitRecord {
                        id: next_id.fetch_add(1, std::sync::atomic::Ordering::SeqCst),
                        cells: cells.to_vec(),
                        old_values: out.old.clone(),
                        old_stamps: out.old_stamps.clone(),
                        new_values,
                    });
                }
            }
        });
        let mut checker = HistoryChecker::new(vec![0; CELLS]);
        let recs = records.into_inner().unwrap();
        let n = recs.len();
        for r in recs {
            checker.add(r);
        }
        let order = checker
            .check()
            .unwrap_or_else(|e| panic!("seed {seed}: history not serializable: {e}"));
        assert_eq!(order.len(), n, "seed {seed}");
        let _ = report;
    }
}

#[test]
fn host_and_sim_agree_on_final_state() {
    // The same single-threaded transaction sequence must produce identical
    // cell values on the host machine and on the simulator (the machine
    // abstraction is semantics-preserving).
    use stm_core::machine::host::HostMachine;

    let run_host = || {
        let ops = StmOps::new(0, 4, 1, 4, StmConfig::default());
        let machine = HostMachine::new(ops.stm().layout().words_needed(), 1);
        let mut port = machine.port(0);
        for i in 0..20u32 {
            ops.fetch_add(&mut port, (i % 4) as usize, i);
            let cells = [0, 3];
            let deltas = [1, 2];
            ops.fetch_add_many(&mut port, &cells, &deltas);
        }
        let all: Vec<usize> = (0..4).collect();
        ops.snapshot(&mut port, &all)
    };
    let run_sim = || {
        let sim = StmSim::new(1, 4, 4, StmConfig::default());
        let report = sim.run(BusModel::for_procs(1), |_p, ops| {
            move |mut port: SimPort| {
                for i in 0..20u32 {
                    ops.fetch_add(&mut port, (i % 4) as usize, i);
                    let cells = [0, 3];
                    let deltas = [1, 2];
                    ops.fetch_add_many(&mut port, &cells, &deltas);
                }
            }
        });
        sim.all_cells(&report)
    };
    assert_eq!(run_host(), run_sim());
}
