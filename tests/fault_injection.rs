//! Systematic fault injection against the protocol's helping guarantees.
//!
//! The Shavit–Touitou liveness argument says a processor may die at *any*
//! protocol step without blocking the system: whatever it left behind —
//! published records, claimed ownerships, half-installed updates — is
//! completed by the first conflicting survivor. These tests sweep the full
//! (step × architecture × seed) crash matrix and check the exact oracle at
//! every point:
//!
//! * crash before the first ownership CAS → the victim's transaction stays
//!   undecided forever and its effect appears **zero** times;
//! * crash at any later step → helpers finish the transaction and its effect
//!   appears **exactly once**;
//! * in all cases the ownership table drains (no leaked ownerships) and the
//!   lock-freedom bound holds (commits keep landing while non-crashed
//!   processors take steps).
//!
//! A deliberately sabotaged protocol variant (release before update) is used
//! to prove the harness has teeth: the checker catches it, and the shrinker
//! reduces the failing `(seed, FaultPlan)` to a minimal reproducer with a
//! readable trace dump.

use stm_core::ops::StmOps;
use stm_core::step::StepKind;
use stm_core::stm::{Sabotage, StmConfig};
use stm_sim::engine::{SimPort, SimReport};
use stm_sim::explore::{crash_matrix, shrink, sweep, FaultFuzzer, MatrixPoint};
use stm_sim::faults::FaultPlan;
use stm_sim::liveness::LivenessChecker;
use stm_sim::trace::render_trace;
use stm_sim::{BusModel, MeshModel, StmSim};

/// The victim's transaction adds this to each of its cells.
const VICTIM_ADD: u32 = 100;
/// Each of the two survivors runs this many 2-cell add transactions.
const SURVIVOR_TXS: usize = 10;
/// Survivors sleep this long before starting, so the victim reliably reaches
/// its scripted crash point first on every architecture model.
const SURVIVOR_DELAY: u64 = 5000;

/// The matrix scenario: processor 0 (the victim) runs one 2-cell transaction
/// and is crashed somewhere inside it by the plan; processors 1 and 2 then
/// hammer the same two cells.
fn matrix_scenario(sim: &StmSim, arch: usize) -> SimReport {
    let body = |p: usize, ops: StmOps| {
        move |mut port: SimPort| {
            if p == 0 {
                ops.fetch_add_many(&mut port, &[0, 1], &[VICTIM_ADD, VICTIM_ADD]);
                return;
            }
            port_delay(&mut port, SURVIVOR_DELAY);
            for _ in 0..SURVIVOR_TXS {
                ops.fetch_add_many(&mut port, &[0, 1], &[1, 1]);
            }
        }
    };
    match arch {
        0 => sim.run(BusModel::for_procs(3), body),
        _ => sim.run(MeshModel::for_procs(3), body),
    }
}

fn port_delay(port: &mut SimPort, cycles: u64) {
    use stm_core::machine::MemPort;
    port.delay(cycles);
}

fn matrix_sim(seed: u64, plan: &FaultPlan) -> StmSim {
    StmSim::new(3, 4, 4, StmConfig::default())
        .seed(seed)
        .jitter(2)
        .trace(100_000)
        .faults(plan.clone())
}

fn check_matrix_point(decode: &StmSim, report: &SimReport, point: &MatrixPoint, ctx: &str) {
    let effect = if point.expect_effect { 1u32 } else { 0 };
    let want = VICTIM_ADD * effect + (2 * SURVIVOR_TXS) as u32;
    for cell in 0..2 {
        assert_eq!(
            decode.cell_value(report, cell),
            want,
            "{ctx}: cell {cell} — victim effect must land {} times",
            effect
        );
    }
    assert_eq!(
        decode.leaked_ownerships(report),
        Vec::<usize>::new(),
        "{ctx}: helpers must drain every ownership the victim left behind"
    );
    assert_eq!(report.crashed, vec![0], "{ctx}: exactly the victim crashed");
    assert_eq!(
        LivenessChecker::with_budget(60_000).check(report),
        None,
        "{ctx}: lock-freedom bound"
    );
}

/// Seeds per matrix point: 10 by default, raised by the nightly CI sweep via
/// the `FAULT_MATRIX_SEEDS` environment variable.
fn matrix_seeds() -> u64 {
    std::env::var("FAULT_MATRIX_SEEDS").ok().and_then(|s| s.parse().ok()).unwrap_or(10)
}

fn run_crash_matrix(arch: usize, arch_name: &str) {
    let decode = StmSim::new(3, 4, 4, StmConfig::default());
    for point in crash_matrix(0, 2) {
        sweep(
            matrix_seeds(),
            |seed| matrix_scenario(&matrix_sim(seed, &point.plan), arch),
            |seed, report| {
                let ctx = format!("{arch_name}/crash@{}/seed{seed}", point.label);
                check_matrix_point(&decode, report, &point, &ctx);
            },
        );
    }
}

#[test]
fn crash_matrix_holds_on_bus_model() {
    run_crash_matrix(0, "bus");
}

#[test]
fn crash_matrix_holds_on_mesh_model() {
    run_crash_matrix(1, "mesh");
}

#[test]
fn helper_crash_mid_help_is_drained_by_the_next_helper() {
    // Two-fault plan: the victim wedges holding both cells, and the first
    // helper dies the moment it starts helping. The second helper must then
    // complete the victim's transaction anyway — helping is idempotent and
    // nobody's death is special.
    let plan = FaultPlan::new()
        .crash_at_step(0, StepKind::Acquired, Some(1))
        .crash_at_step(1, StepKind::HelpBegin, None);
    let decode = StmSim::new(3, 4, 4, StmConfig::default());
    for arch in 0..2 {
        sweep(
            matrix_seeds(),
            |seed| {
                let sim = matrix_sim(seed, &plan);
                let body = |p: usize, ops: StmOps| {
                    move |mut port: SimPort| {
                        if p == 0 {
                            ops.fetch_add_many(&mut port, &[0, 1], &[VICTIM_ADD, VICTIM_ADD]);
                            return;
                        }
                        // Stagger the helpers so P1 reliably conflicts (and
                        // dies) before P2 wakes.
                        port_delay(&mut port, SURVIVOR_DELAY * p as u64);
                        for _ in 0..SURVIVOR_TXS {
                            ops.fetch_add_many(&mut port, &[0, 1], &[1, 1]);
                        }
                    }
                };
                match arch {
                    0 => sim.run(BusModel::for_procs(3), body),
                    _ => sim.run(MeshModel::for_procs(3), body),
                }
            },
            |seed, report| {
                let ctx = format!("arch{arch}/seed{seed}");
                assert_eq!(report.crashed, vec![0, 1], "{ctx}");
                // Victim's effect exactly once; P1 died before committing
                // anything of its own; P2 ran all its transactions.
                let want = VICTIM_ADD + SURVIVOR_TXS as u32;
                for cell in 0..2 {
                    assert_eq!(decode.cell_value(report, cell), want, "{ctx}: cell {cell}");
                }
                assert!(decode.leaked_ownerships(report).is_empty(), "{ctx}");
                assert_eq!(LivenessChecker::with_budget(60_000).check(report), None, "{ctx}");
            },
        );
    }
}

#[test]
fn stalled_victim_resumes_after_helpers_completed_its_transaction() {
    // The victim freezes right before its decision CAS, long enough for the
    // survivors to conflict, help, and finish its transaction. When it
    // resumes, every one of its remaining protocol writes must be rejected
    // by the version tags — the effect still lands exactly once.
    let plan = FaultPlan::new().stall_at_step(0, StepKind::BeforeDecisionCas, None, 40_000);
    let decode = StmSim::new(3, 4, 4, StmConfig::default());
    sweep(
        matrix_seeds(),
        |seed| matrix_scenario(&matrix_sim(seed, &plan), 0),
        |seed, report| {
            let ctx = format!("seed{seed}");
            assert!(report.crashed.is_empty(), "{ctx}: a stall is not a crash");
            let want = VICTIM_ADD + (2 * SURVIVOR_TXS) as u32;
            for cell in 0..2 {
                assert_eq!(decode.cell_value(report, cell), want, "{ctx}: cell {cell}");
            }
            assert!(decode.leaked_ownerships(report).is_empty(), "{ctx}");
        },
    );
}

#[test]
fn fuzzed_fault_plans_preserve_commit_effect_equality() {
    // Property: whatever combination of crashes, stalls, and slow-downs the
    // fuzzer scripts (with the last processor kept fault-free as a designated
    // survivor), every committed transaction's effect is applied exactly once
    // — the final counter equals the number of commit decisions in the trace
    // — and the ownership table drains.
    const PROCS: usize = 4;
    const TXS: usize = 12;
    let decode = StmSim::new(PROCS, 2, 2, StmConfig::default());
    let mut fuzzer = FaultFuzzer::new(0xfa1715, PROCS, 1);
    for round in 0..30 {
        let plan = fuzzer.next_plan();
        let sim = StmSim::new(PROCS, 2, 2, StmConfig::default())
            .seed(round)
            .jitter(3)
            .trace(200_000)
            .faults(plan.clone());
        let report = sim.run(BusModel::for_procs(PROCS), |_p, ops| {
            move |mut port: SimPort| {
                for _ in 0..TXS {
                    ops.fetch_add(&mut port, 0, 1);
                }
            }
        });
        let ctx = format!("round {round}, plan [{plan}]");
        assert!(
            report.trace.len() < 200_000,
            "{ctx}: trace overflowed; commit count would be unreliable"
        );
        let commits = decode.commit_count(&report) as u32;
        assert_eq!(
            decode.cell_value(&report, 0),
            commits,
            "{ctx}: every commit must be applied exactly once"
        );
        assert!(decode.leaked_ownerships(&report).is_empty(), "{ctx}");
        assert_eq!(LivenessChecker::with_budget(80_000).check(&report), None, "{ctx}");
    }
}

#[test]
fn version_counter_wraparound_is_harmless_under_contention() {
    // The record version lives only as truncations: 40 bits in status and
    // ownership words, 15 bits in old-value entries (see
    // `stm_core::word::VERSION_BITS` / `OLDVAL_VERSION_BITS`). Pre-seed every
    // processor's counter just below each boundary so a short contended run
    // drives all of them across the wrap mid-protocol — helping, agreement,
    // and release must keep working across the discontinuity.
    let decode = StmSim::new(3, 2, 2, StmConfig::default());
    for preset in [(1u64 << 40) - 3, (1u64 << 15) - 3] {
        sweep(
            matrix_seeds(),
            |seed| {
                let mut sim =
                    StmSim::new(3, 2, 2, StmConfig::default()).seed(seed).jitter(3).trace(100_000);
                for p in 0..3 {
                    sim.preset_status_version(p, preset);
                }
                sim.run(BusModel::for_procs(3), |_p, ops| {
                    move |mut port: SimPort| {
                        for _ in 0..10 {
                            ops.fetch_add(&mut port, 0, 1);
                        }
                    }
                })
            },
            |seed, report| {
                let ctx = format!("preset {preset:#x}, seed {seed}");
                assert_eq!(decode.cell_value(report, 0), 30, "{ctx}: increments lost at wrap");
                assert!(decode.leaked_ownerships(report).is_empty(), "{ctx}");
                assert_eq!(LivenessChecker::with_budget(60_000).check(report), None, "{ctx}");
            },
        );
    }
}

/// Run the contended counter under the sabotaged protocol (release before
/// update) and report whether the harness catches the bug.
fn sabotage_fails(seed: u64, plan: &FaultPlan) -> bool {
    let config = StmConfig { sabotage: Sabotage::ReleaseBeforeUpdate, ..Default::default() };
    let sim = StmSim::new(3, 2, 2, config)
        .seed(seed)
        .jitter(3)
        .trace(200_000)
        .faults(plan.clone());
    let report = sim.run(BusModel::for_procs(3), |_p, ops| {
        move |mut port: SimPort| {
            for _ in 0..15 {
                ops.fetch_add(&mut port, 0, 1);
            }
        }
    });
    let commits = sim.commit_count(&report) as u32;
    sim.cell_value(&report, 0) != commits
        || !sim.leaked_ownerships(&report).is_empty()
        || LivenessChecker::with_budget(80_000).check(&report).is_some()
}

#[test]
fn sabotaged_protocol_is_caught_and_shrunk_to_a_minimal_reproducer() {
    // Harness validation: a protocol that releases ownership before
    // installing updates breaks exactly-once effect application. The fault
    // fuzzer must find a failing (seed, plan), and the shrinker must reduce
    // it to a minimal reproducer with a readable trace dump.
    //
    // Stalling a committer between its release and its update (the
    // UpdateWrite step sits in that window under sabotage) lets a rival
    // transaction read the pre-update value — a lost update. Seed the search
    // with that canonical plan plus fuzzed plans, and let the empty plan
    // compete too (pure schedule jitter can expose the race on its own).
    let canonical = FaultPlan::new().stall_at_step(0, StepKind::UpdateWrite, Some(0), 5000);
    let mut fuzzer = FaultFuzzer::new(7, 3, 1);
    let mut candidates = vec![FaultPlan::new(), canonical];
    for _ in 0..20 {
        candidates.push(fuzzer.next_plan());
    }

    let mut failing: Option<(u64, FaultPlan)> = None;
    'search: for seed in 0..10u64 {
        for plan in &candidates {
            if sabotage_fails(seed, plan) {
                failing = Some((seed, plan.clone()));
                break 'search;
            }
        }
    }
    let (seed, plan) = failing.expect(
        "the sabotaged protocol evaded the fault harness: checker has no teeth",
    );

    let (min_seed, min_plan) = shrink(seed, &plan, sabotage_fails);
    assert!(sabotage_fails(min_seed, &min_plan), "shrunk reproducer must still fail");
    assert!(
        min_plan.faults.len() <= plan.faults.len(),
        "shrinking must never grow the plan"
    );

    // Correctness control: the same reproducer passes on the real protocol.
    {
        let sim = StmSim::new(3, 2, 2, StmConfig::default())
            .seed(min_seed)
            .jitter(3)
            .trace(200_000)
            .faults(min_plan.clone());
        let report = sim.run(BusModel::for_procs(3), |_p, ops| {
            move |mut port: SimPort| {
                for _ in 0..15 {
                    ops.fetch_add(&mut port, 0, 1);
                }
            }
        });
        assert_eq!(sim.cell_value(&report, 0), sim.commit_count(&report) as u32);
        assert!(sim.leaked_ownerships(&report).is_empty());
    }

    // Render the counterexample the way a human would receive it.
    let config = StmConfig { sabotage: Sabotage::ReleaseBeforeUpdate, ..Default::default() };
    let sim = StmSim::new(3, 2, 2, config)
        .seed(min_seed)
        .jitter(3)
        .trace(200_000)
        .faults(min_plan.clone());
    let report = sim.run(BusModel::for_procs(3), |_p, ops| {
        move |mut port: SimPort| {
            for _ in 0..15 {
                ops.fetch_add(&mut port, 0, 1);
            }
        }
    });
    let dump = render_trace(&report.trace, 60, report.trace_dropped);
    println!("minimal reproducer: seed {min_seed}, plan [{min_plan}]");
    println!("{dump}");
    assert!(dump.contains("step "), "dump must show protocol steps:\n{dump}");
    assert!(dump.lines().count() >= 10, "dump too short:\n{dump}");
}
