//! Growth safety for the sharded cell arena.
//!
//! The tentpole claim of the arena refactor is that **growth moves
//! nothing**: segment-append keeps every handed-out `CellIdx` — and hence
//! every cell address, ownership address, and packed `stamp|value` word —
//! bit-stable across arbitrary interleavings of segment growth, span
//! allocation, and span free. These tests pin that claim three ways:
//!
//! 1. **Replay determinism (proptest, host):** an arbitrary alloc/free
//!    program replayed on two fresh arenas hands out the *same* cell
//!    indices, and live spans never overlap, never leave the segment
//!    region, and never straddle a segment boundary.
//! 2. **Ascending addresses:** cell and ownership addresses are strictly
//!    increasing in `CellIdx`, so sorting a transaction's data set by index
//!    sorts its ownership words by address — the Shavit–Touitou
//!    acquisition-order argument survives the growable heap.
//! 3. **Simulator bit-stability (Bus + Mesh):** the same seeded schedule
//!    over an arena-backed STM — procs growing, transacting on, and freeing
//!    spans mid-run — produces a bit-identical final memory image when
//!    replayed, and freed spans keep their last committed packed words
//!    (stamps keep moving forward for the next tenant). Seed count scales
//!    with `FAULT_MATRIX_SEEDS` like the other matrix sweeps.

use std::sync::{Arc, Mutex};

use proptest::collection::vec;
use proptest::prelude::*;
use stm_core::arena::CellArena;
use stm_core::layout::StmLayout;
use stm_core::machine::host::HostMachine;
use stm_core::stm::StmConfig;
use stm_core::word::CellIdx;
use stm_sim::arch::{BusModel, MeshModel};
use stm_sim::engine::SimPort;
use stm_sim::harness::StmSim;

/// Seeds for the simulator sweep; raised in nightly CI (same knob as the
/// crash-matrix sweeps).
fn matrix_seeds() -> u64 {
    std::env::var("FAULT_MATRIX_SEEDS").ok().and_then(|s| s.parse().ok()).unwrap_or(10)
}

/// A small arena: 4 shards × 16-cell segments, up to 12 segments.
fn small_layout(n_procs: usize) -> StmLayout {
    StmLayout::arena(0, n_procs, 8, 0, 4, 16, 12)
}

// ---------------------------------------------------------------------------
// 1 + 2: replay determinism, span disjointness, ascending addresses
// ---------------------------------------------------------------------------

/// One step of an alloc/free program. `Free(i)` frees the `i`-th oldest
/// span still live at that point (modulo the live count), so programs stay
/// valid however allocation succeeds or fails.
#[derive(Debug, Clone)]
enum ArenaOp {
    Alloc { proc: usize, span: usize },
    Free(usize),
}

fn arena_op() -> impl Strategy<Value = ArenaOp> {
    // Two alloc arms to one free keeps the arena growing.
    let alloc = |_: ()| {
        (0usize..4, 1usize..=4).prop_map(|(proc, span)| ArenaOp::Alloc { proc, span })
    };
    let free = (0usize..64).prop_map(ArenaOp::Free);
    prop_oneof![alloc(()), alloc(()), free]
}

/// Run `program` on a fresh arena, checking span invariants at every step;
/// returns the exact sequence of alloc results (None on exhaustion).
fn replay(program: &[ArenaOp]) -> Vec<Option<CellIdx>> {
    let layout = small_layout(4);
    let arena = CellArena::new(layout);
    let seg_cells = layout.seg_cells();
    let mut live: Vec<(CellIdx, usize)> = Vec::new();
    let mut results = Vec::new();
    for op in program {
        match *op {
            ArenaOp::Alloc { proc, span } => {
                let got = arena.alloc_span(proc, span);
                if let Some(idx) = got {
                    // In bounds, within one segment, disjoint from every
                    // live span, and visible as live.
                    assert!(idx + span <= layout.n_cells());
                    assert!(idx % seg_cells + span <= seg_cells, "span straddles a segment");
                    for &(other, olen) in &live {
                        assert!(
                            idx + span <= other || other + olen <= idx,
                            "span [{idx},{span}] overlaps live [{other},{olen}]"
                        );
                    }
                    assert!((idx..idx + span).all(|c| arena.is_live(c)));
                    live.push((idx, span));
                }
                results.push(got);
            }
            ArenaOp::Free(i) => {
                if !live.is_empty() {
                    let (idx, span) = live.remove(i % live.len());
                    arena.free_span(idx, span);
                    assert!((idx..idx + span).all(|c| !arena.is_live(c)));
                }
            }
        }
    }
    let live_now: usize = live.iter().map(|&(_, s)| s).sum();
    assert_eq!(arena.live_cells(), live_now, "live-cell accounting drifted");
    results
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]
    /// The same alloc/free program on two fresh arenas hands out exactly
    /// the same cell indices — allocation is a pure function of the
    /// program, never of wall-clock or map iteration order.
    #[test]
    fn arena_replay_is_deterministic_and_disjoint(program in vec(arena_op(), 1..120)) {
        let first = replay(&program);
        let second = replay(&program);
        prop_assert_eq!(first, second);
    }
}

#[test]
fn cell_and_ownership_addresses_ascend_with_index() {
    let layout = small_layout(4);
    // Strictly ascending across the whole capacity — including every
    // segment boundary — so index order is acquisition order.
    for idx in 1..layout.n_cells() {
        assert!(
            layout.cell(idx) > layout.cell(idx - 1),
            "cell address dipped at {idx}"
        );
        assert!(
            layout.ownership(idx) > layout.ownership(idx - 1),
            "ownership address dipped at {idx}"
        );
    }
    // The shard map covers exactly the segment region.
    let geom = layout.shard_geometry().expect("arena layout has a geometry");
    for idx in 0..layout.n_cells() {
        assert_eq!(geom.shard_of(layout.cell(idx)), Some(layout.shard_of(idx)));
    }
    assert_eq!(geom.shard_of(layout.status(0)), None, "records are outside the shard map");
}

// ---------------------------------------------------------------------------
// 3: bit-stability under simulated schedules, Bus + Mesh
// ---------------------------------------------------------------------------

/// Per-proc workload: three rounds of grow/alloc → transact → (sometimes)
/// free over the shared arena. With one shard per proc and ample capacity,
/// each proc's allocation sequence is deterministic regardless of how the
/// host interleaves the closures, so a seeded schedule is replayable.
fn sim_round(
    seed: u64,
    mesh: bool,
) -> (Vec<u64>, Vec<(CellIdx, u32)>) {
    const PROCS: usize = 4;
    let layout = StmLayout::arena(0, PROCS, 8, 0, PROCS, 8, 16);
    let geom = layout.shard_geometry().expect("arena geometry");
    let arena = Arc::new(CellArena::new(layout));
    let freed: Arc<Mutex<Vec<(CellIdx, u32)>>> = Arc::new(Mutex::new(Vec::new()));
    let sim = StmSim::with_layout(PROCS, layout, StmConfig::default()).seed(seed).jitter(3);
    let make_body = |p: usize, ops: stm_core::ops::StmOps| {
        let arena = Arc::clone(&arena);
        let freed = Arc::clone(&freed);
        move |mut port: SimPort| {
            for round in 0u32..3 {
                let span = 1 + (round as usize % 3);
                let idx = arena.alloc_span(p, span).expect("arena sized for the workload");
                let value = (p as u32) << 16 | round << 8;
                for j in 0..span {
                    ops.swap(&mut port, idx + j, value + j as u32);
                }
                if round != 1 {
                    arena.free_span(idx, span);
                    let mut f = freed.lock().unwrap();
                    for j in 0..span {
                        f.push((idx + j, value + j as u32));
                    }
                }
            }
        }
    };
    let report = if mesh {
        sim.run(MeshModel::for_procs(PROCS).with_shard_geometry(geom), make_body)
    } else {
        sim.run(BusModel::for_procs(PROCS).with_shard_geometry(geom, 4), make_body)
    };
    assert!(sim.leaked_ownerships(&report).is_empty(), "ownership leaked (seed {seed})");
    let mut f = Arc::try_unwrap(freed).expect("workload done").into_inner().unwrap();
    f.sort_unstable();
    (report.memory, f)
}

#[test]
fn packed_words_bit_stable_across_growth_on_bus_and_mesh() {
    for mesh in [false, true] {
        for seed in 0..matrix_seeds() {
            let (mem_a, freed_a) = sim_round(seed, mesh);
            let (mem_b, freed_b) = sim_round(seed, mesh);
            // Same seed ⇒ the entire memory image — cells, ownerships,
            // records — is bit-identical, growth and frees included.
            assert_eq!(mem_a, mem_b, "memory diverged (mesh={mesh} seed={seed})");
            assert_eq!(freed_a, freed_b, "free log diverged (mesh={mesh} seed={seed})");
            // Freed spans keep their last committed packed value: the
            // arena never scrubs, so stale readers revalidate against
            // unchanged stamps instead of reading torn words.
            let layout = StmLayout::arena(0, 4, 8, 0, 4, 8, 16);
            for &(idx, want) in &freed_a {
                let word = mem_a[layout.cell(idx)];
                assert_eq!(
                    stm_core::word::cell_value(word),
                    want,
                    "freed cell {idx} lost its last value (mesh={mesh} seed={seed})"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Dynamic transactions over arena-allocated cells (host)
// ---------------------------------------------------------------------------

#[test]
fn dynamic_transactions_run_over_arena_cells() {
    use stm_core::dynamic::DynamicStm;
    use stm_core::stm::TxOptions;

    let layout = StmLayout::arena(0, 2, 8, 0, 2, 16, 4);
    let arena = CellArena::new(layout);
    let d = DynamicStm::with_layout(layout, StmConfig::default());
    let machine = HostMachine::new(layout.end(), 2);
    let mut port = machine.port(0);

    // Two spans from different shards; a dynamic read-modify-write across
    // both commits like any static-footprint transaction (footprint ≤ 8).
    let a = arena.alloc_span(0, 3).expect("alloc");
    let b = arena.alloc_span(1, 2).expect("alloc");
    let (sum, _) = d
        .run(
            &mut port,
            |tx| {
                let mut sum = 0u32;
                for j in 0..3 {
                    let v = tx.read(a + j);
                    tx.write(a + j, v + 1 + j as u32);
                    sum += v;
                }
                for j in 0..2 {
                    let v = tx.read(b + j);
                    tx.write(b + j, v + 10);
                    sum += v;
                }
                sum
            },
            &mut TxOptions::new(),
        )
        .expect("commit");
    assert_eq!(sum, 0, "fresh cells start zeroed");
    for j in 0..3 {
        assert_eq!(d.read_cell(&mut port, a + j), 1 + j as u32);
    }
    for j in 0..2 {
        assert_eq!(d.read_cell(&mut port, b + j), 10);
    }
    arena.free_span(a, 3);
    // The freed span keeps its words; the next tenant of the same cells
    // sees them until it commits its own.
    let a2 = arena.alloc_span(0, 3).expect("LIFO reuse");
    assert_eq!(a2, a, "span-keyed free list reuses the span");
    assert_eq!(d.read_cell(&mut port, a2), 1);
}
