//! The fairness layer under contention storms, on simulated machines.
//!
//! The paper's protocol is lock-free but not starvation-free: a big-k
//! transaction can lose to a stream of small commits forever. The fairness
//! extension bounds that: after N losses the contention manager escalates
//! (helpers defer instead of failing the record), after M further losses it
//! claims the forced tier (the acquisition sweep never self-fails), and a
//! validation failure that changed only a few read cells is delta re-run
//! inside the window instead of paying a full release/retry cycle.
//!
//! These tests pin the end-to-end claims on Bus and Mesh:
//!
//! * **Bounded starvation** — under a small-tx storm, no escalated big-k
//!   transaction exceeds N+M losses before committing.
//! * **One-level helping** — escalated and forced commits never nest help
//!   excursions (a helper never helps while helping).
//! * **Ascending order** — forced sweeps claim locations in strictly
//!   ascending cell order ([`ForcedOrderChecker`]), and the checker has
//!   teeth: a sabotaged protocol variant is caught.
//! * **Delta equivalence** — for commutative workloads, schedules that land
//!   delta-revalidated commits produce final memory identical to the
//!   full-retry schedules', on both architectures (proptest over seeds).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use proptest::prelude::*;
use stm_core::contention::{
    AdaptiveConfig, AdaptiveManager, ConflictInfo, ContentionManager, PriorityBoard,
    PriorityLevel, RetryDecision,
};
use stm_core::dynamic::DynamicStm;
use stm_core::observe::TxObserver;
use stm_core::step::StepPoint;
use stm_core::stm::{Sabotage, StmConfig, TxOptions, TxSpec};
use stm_core::word::Word;
use stm_sim::arch::{BusModel, MeshModel, UniformModel};
use stm_sim::engine::{SimConfig, SimPort, Simulation, Violation};
use stm_sim::harness::StmSim;
use stm_sim::liveness::{ForcedOrderChecker, LivenessChecker};
use stm_sim::trace::TraceKind;

// ---------------------------------------------------------------------------
// Shared instrumentation
// ---------------------------------------------------------------------------

/// Cross-thread tallies of the fairness observer events.
#[derive(Clone, Default)]
struct FairnessCounters {
    escalations: Arc<AtomicU64>,
    deferrals: Arc<AtomicU64>,
    forced: Arc<AtomicU64>,
    delta: Arc<AtomicU64>,
    /// Help excursions entered while one was already open on the same proc —
    /// any nonzero value breaks the one-level-helping bound.
    nested_helps: Arc<AtomicU64>,
}

/// Per-proc observer feeding [`FairnessCounters`].
struct FairnessObserver {
    c: FairnessCounters,
    help_depth: u64,
}

impl FairnessObserver {
    fn new(c: &FairnessCounters) -> Self {
        FairnessObserver { c: c.clone(), help_depth: 0 }
    }
}

impl TxObserver for FairnessObserver {
    fn starvation_escalated(&mut self, _p: usize, _o: Option<usize>, _a: u64, _now: u64) {
        self.c.escalations.fetch_add(1, Ordering::Relaxed);
    }
    fn conflict_deferred(&mut self, _p: usize, _o: usize, _now: u64) {
        self.c.deferrals.fetch_add(1, Ordering::Relaxed);
    }
    fn forced_commit(&mut self, _p: usize, _a: u64, _now: u64) {
        self.c.forced.fetch_add(1, Ordering::Relaxed);
    }
    fn delta_committed(&mut self, _p: usize, _cells: u64, _now: u64) {
        self.c.delta.fetch_add(1, Ordering::Relaxed);
    }
    fn help_begin(&mut self, _p: usize, _o: usize, _now: u64) {
        self.help_depth += 1;
        if self.help_depth > 1 {
            self.c.nested_helps.fetch_add(1, Ordering::Relaxed);
        }
    }
    fn help_end(&mut self, _p: usize, _o: usize, _now: u64) {
        self.help_depth = self.help_depth.saturating_sub(1);
    }
}

// ---------------------------------------------------------------------------
// Bounded starvation under a small-tx storm (Bus + Mesh)
// ---------------------------------------------------------------------------

const STORM_PROCS: usize = 4;
const BIG_K: usize = 6;
const STORM_CELLS: usize = 8;
const BIG_TXS: usize = 20;
const SMALL_TXS: usize = 150;

/// The big-k proc's aggressive escalation ladder: N = 4 attempts trips
/// escalation at the latest, M = 2 further losses claims the forced slot.
fn big_cfg() -> AdaptiveConfig {
    AdaptiveConfig {
        starvation_losses: 2,
        starvation_attempts: 4,
        forced_losses: 2,
        ..AdaptiveConfig::default()
    }
}

/// N+M: the most conflicts an escalating transaction can suffer before its
/// sweep goes forced (which cannot lose).
fn loss_bound(cfg: &AdaptiveConfig) -> u64 {
    cfg.starvation_attempts + cfg.forced_losses
}

/// Storm seeds swept per architecture: 3 by default, raised by the nightly
/// CI sweep via the `FAULT_MATRIX_SEEDS` environment variable.
fn matrix_seeds() -> u64 {
    std::env::var("FAULT_MATRIX_SEEDS").ok().and_then(|s| s.parse().ok()).unwrap_or(3)
}

fn storm_report(mesh: bool, seed: u64) -> (StmSim, stm_sim::engine::SimReport, FairnessCounters, u64) {
    let board = Arc::new(PriorityBoard::new(STORM_PROCS));
    let sim = StmSim::new(STORM_PROCS, STORM_CELLS, STORM_CELLS, StmConfig::default())
        .priority_board(Arc::clone(&board))
        .seed(seed)
        .jitter(3)
        .trace(1 << 17);
    let counters = FairnessCounters::default();
    let max_losses = Arc::new(AtomicU64::new(0));
    let report = {
        let body = |p: usize, ops: stm_core::ops::StmOps| {
            let board = Arc::clone(&board);
            let counters = counters.clone();
            let max_losses = Arc::clone(&max_losses);
            move |mut port: SimPort| {
                let mut obs = FairnessObserver::new(&counters);
                if p == 0 {
                    // One big-k read-modify-write per iteration, spanning the
                    // storm's hot cells — the starvation victim.
                    let mut cm = AdaptiveManager::with_config(0, big_cfg()).with_board(board);
                    let cells: Vec<usize> = (0..BIG_K).collect();
                    let params: Vec<Word> = vec![1; BIG_K];
                    for _ in 0..BIG_TXS {
                        let out = ops
                            .run(
                                &mut port,
                                &TxSpec::new(ops.builtins().add, &params, &cells),
                                &mut TxOptions::new().observer(&mut obs).manager(&mut cm),
                            )
                            .expect("unlimited budget");
                        max_losses.fetch_max(out.stats.conflicts, Ordering::Relaxed);
                    }
                } else {
                    // The storm: short adds hammering the two hottest cells.
                    let mut cm = AdaptiveManager::new(p).with_board(board);
                    for i in 0..SMALL_TXS {
                        let cell = [(p + i) % 2];
                        let _ = ops.run(
                            &mut port,
                            &TxSpec::new(ops.builtins().add, &[1], &cell),
                            &mut TxOptions::new().observer(&mut obs).manager(&mut cm),
                        )
                        .expect("unlimited budget");
                    }
                }
            }
        };
        if mesh {
            sim.run(MeshModel::for_procs(STORM_PROCS), body)
        } else {
            sim.run(BusModel::for_procs(STORM_PROCS), body)
        }
    };
    let max = max_losses.load(Ordering::Relaxed);
    (sim, report, counters, max)
}

/// Run one storm and assert every per-schedule invariant. Returns the
/// escalation count (whether the storm actually tripped the ladder is
/// seed-dependent, so the caller aggregates it).
fn check_storm(mesh: bool, seed: u64) -> u64 {
    let (sim, report, counters, max_losses) = storm_report(mesh, seed);
    let ctx = format!("mesh={mesh} seed={seed}");

    // Exactness first: every add landed exactly once.
    let cells = sim.all_cells(&report);
    let total: u64 = cells.iter().map(|&v| v as u64).sum();
    let expected = (BIG_TXS * BIG_K + (STORM_PROCS - 1) * SMALL_TXS) as u64;
    assert_eq!(total, expected, "{ctx}: lost or duplicated adds");
    for (c, &v) in cells.iter().enumerate().take(BIG_K).skip(2) {
        assert_eq!(v as usize, BIG_TXS, "{ctx}: big-only cell {c}");
    }
    assert!(sim.leaked_ownerships(&report).is_empty(), "{ctx}");

    // The ladder bounded the big transaction's losses: never more than N+M
    // conflicts before a commit (the forced sweep cannot lose).
    let bound = loss_bound(&big_cfg());
    assert!(
        max_losses <= bound,
        "{ctx}: a transaction lost {max_losses} times, above the N+M bound {bound}"
    );

    // One-level helping held throughout, escalated and forced alike.
    assert_eq!(counters.nested_helps.load(Ordering::Relaxed), 0, "{ctx}");

    // The run stayed lock-free and every forced claim stayed ascending.
    assert_eq!(LivenessChecker::default().check(&report), None, "{ctx}");
    assert_eq!(ForcedOrderChecker.check(&report), None, "{ctx}");

    counters.escalations.load(Ordering::Relaxed)
}

/// Sweep storm seeds on one architecture; the loss bound and the trace
/// invariants must hold for every schedule, and the storm must trip the
/// ladder on at least one.
fn sweep_storms(mesh: bool) {
    let escalations: u64 = (0..matrix_seeds()).map(|seed| check_storm(mesh, seed)).sum();
    // Seed 9 is the known-starving schedule; always include it so the sweep
    // can never pass vacuously (a storm too weak to escalate proves nothing).
    let escalations = escalations + check_storm(mesh, 9);
    assert!(escalations > 0, "mesh={mesh}: no storm seed produced an escalation");
}

#[test]
fn storm_bounds_big_tx_losses_on_bus() {
    sweep_storms(false);
}

#[test]
fn storm_bounds_big_tx_losses_on_mesh() {
    sweep_storms(true);
}

// ---------------------------------------------------------------------------
// Forced-order checker: clean runs pass, sabotage is caught
// ---------------------------------------------------------------------------

/// A manager that pins every attempt at the forced tier — the smallest
/// deterministic way to drive the never-self-fail sweep.
struct AlwaysForced;

impl ContentionManager for AlwaysForced {
    fn on_conflict(&mut self, _info: &ConflictInfo) -> RetryDecision {
        RetryDecision::immediate()
    }
    fn on_commit(&mut self) {}
    fn priority(&self) -> PriorityLevel {
        PriorityLevel::Forced
    }
}

fn forced_run(config: StmConfig) -> (StmSim, stm_sim::engine::SimReport) {
    let sim = StmSim::new(1, 4, 4, config).trace(4096);
    let report = sim.run(UniformModel::new(1, 3), |_p, ops| {
        move |mut port: SimPort| {
            let _ = ops
                .run(
                    &mut port,
                    &TxSpec::new(ops.builtins().add, &[1, 1, 1], &[0, 1, 2]),
                    &mut TxOptions::new().manager(AlwaysForced),
                )
                .expect("uncontended forced tx commits");
        }
    });
    (sim, report)
}

#[test]
fn forced_sweep_announces_ascending_claims() {
    let (sim, report) = forced_run(StmConfig::default());
    assert_eq!(sim.all_cells(&report), vec![1, 1, 1, 0]);

    // Exactly one announcement per data-set cell, in ascending cell order.
    let claimed: Vec<usize> = report
        .trace
        .iter()
        .filter_map(|e| match e.kind {
            TraceKind::Step(StepPoint::ForcedAcquired { cell }) => Some(cell),
            _ => None,
        })
        .collect();
    assert_eq!(claimed, vec![0, 1, 2]);
    assert_eq!(ForcedOrderChecker.check(&report), None);
}

#[test]
fn forced_order_checker_has_teeth() {
    // The sabotaged variant mis-announces every forced claim as cell 0, so
    // a 3-cell forced sweep repeats an index — exactly the regression the
    // checker exists to catch. Memory is untouched by the sabotage (only
    // the announcement lies), which is the point: without the checker the
    // run looks healthy.
    let config = StmConfig { sabotage: Sabotage::ForcedOutOfOrder, ..StmConfig::default() };
    let (sim, report) = forced_run(config);
    assert_eq!(sim.all_cells(&report), vec![1, 1, 1, 0]);
    match ForcedOrderChecker.check(&report) {
        Some(Violation::ForcedOrder { proc: 0, prev_cell: 0, cell: 0, .. }) => {}
        other => panic!("expected a ForcedOrder violation, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// Delta-revalidation: the re-run path fires, and is memory-equivalent
// ---------------------------------------------------------------------------

const DELTA_PROCS: usize = 3;
const DELTA_CELLS: usize = 8;
/// Big dynamic footprint: reads/writes cells 0..6.
const DELTA_BIG_K: usize = 6;
const DELTA_BIG_TXS: usize = 12;
const DELTA_SMALL_TXS: usize = 60;

/// Run the delta workload and return (final cells, delta commits observed).
///
/// The workload is commutative (pure increments), so final memory is
/// schedule-independent: cell c gets one increment per transaction that
/// wrote it, no matter how retries, helping, or delta re-runs interleave.
fn delta_workload(seed: u64, delta_retry_cells: usize, mesh: bool) -> (Vec<u32>, u64) {
    let config = StmConfig { delta_retry_cells, ..StmConfig::default() };
    let d = DynamicStm::new(0, DELTA_CELLS, DELTA_PROCS, config);
    let l = *d.stm().layout();
    let sim_config = SimConfig { n_words: l.words_needed(), seed, jitter: 4, ..Default::default() };
    let counters = FairnessCounters::default();
    let report = {
        let body = |p: usize| {
            let d = d.clone();
            let counters = counters.clone();
            move |mut port: SimPort| {
                let mut obs = FairnessObserver::new(&counters);
                if p == 0 {
                    // Big-footprint read-modify-write: the delta candidate.
                    for _ in 0..DELTA_BIG_TXS {
                        d.run(
                            &mut port,
                            |tx| {
                                for c in 0..DELTA_BIG_K {
                                    let v = tx.read(c);
                                    tx.write(c, v + 1);
                                }
                            },
                            &mut TxOptions::new().observer(&mut obs),
                        )
                        .expect("unlimited budget");
                    }
                } else {
                    // Small writers confined to cells 0..2, so a failed
                    // validation changes at most 2 of the big read set.
                    for i in 0..DELTA_SMALL_TXS {
                        let c = (p + i) % 2;
                        d.run(
                            &mut port,
                            |tx| {
                                let v = tx.read(c);
                                tx.write(c, v + 1);
                            },
                            &mut TxOptions::new().observer(&mut obs),
                        )
                        .expect("unlimited budget");
                    }
                }
            }
        };
        if mesh {
            Simulation::new(sim_config, MeshModel::for_procs(DELTA_PROCS))
                .run(DELTA_PROCS, body)
        } else {
            Simulation::new(sim_config, BusModel::for_procs(DELTA_PROCS)).run(DELTA_PROCS, body)
        }
    };
    let cells: Vec<u32> =
        (0..DELTA_CELLS).map(|c| stm_core::word::cell_value(report.memory[l.cell(c)])).collect();
    (cells, counters.delta.load(Ordering::Relaxed))
}

/// The schedule-independent expected final memory of the delta workload.
fn delta_expected() -> Vec<u32> {
    let mut cells = vec![0u32; DELTA_CELLS];
    for cell in cells.iter_mut().take(DELTA_BIG_K) {
        *cell += DELTA_BIG_TXS as u32;
    }
    for p in 1..DELTA_PROCS {
        for i in 0..DELTA_SMALL_TXS {
            cells[(p + i) % 2] += 1;
        }
    }
    cells
}

#[test]
fn delta_rerun_fires_under_contention() {
    // At least one seed on each architecture must land a delta commit, or
    // the path (and this PR's ablation) is dead code in practice.
    for mesh in [false, true] {
        let fired: u64 = (0..4).map(|seed| delta_workload(seed, 4, mesh).1).sum();
        assert!(fired > 0, "mesh={mesh}: no delta commit landed across seeds");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Delta-committed schedules end in the same memory as full-retry
    /// schedules, on both architectures — and both match the reference.
    #[test]
    fn delta_schedules_match_full_retry(seed in 0u64..64, mesh: bool) {
        let (with_delta, _) = delta_workload(seed, 4, mesh);
        let (without, zero) = delta_workload(seed, 0, mesh);
        prop_assert_eq!(zero, 0, "delta must be off at threshold 0");
        prop_assert_eq!(&with_delta, &without);
        prop_assert_eq!(with_delta, delta_expected());
    }
}
