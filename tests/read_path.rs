//! The read-only fast path under adversarial concurrency.
//!
//! The validated double-collect read ([`stm_core::stm::Stm::try_read_only`])
//! commits snapshots with zero shared-memory writes. These tests pin down
//! the two claims that make it safe to ship:
//!
//! 1. **Agreement** — a fast-path snapshot is a consistent cut: it observes
//!    exactly the states an identity (acquiring) transaction over the same
//!    cells can observe, never a torn mixture. Checked against lockstep
//!    writers on the deterministic Bus/Mesh simulators (proptest over
//!    schedules) and on the real host machine under [`ChaosPort`]
//!    preemption injection.
//! 2. **Bounded retry** — when a writer storm (or a stalled owner) keeps
//!    invalidating the collect, the fast path gives up after
//!    `fast_read_rounds` and falls back to the acquiring protocol, which
//!    helps blockers through; reads stay lock-free rather than livelocking.
//!
//! The lockstep invariant does the heavy lifting: writers only ever
//! increment *all* cells in one transaction, so any snapshot in which the
//! cells differ is an inconsistent cut, and the all-equal value is a
//! monotone clock that totally orders every observed snapshot.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use proptest::prelude::*;
use stm_core::machine::chaos::{ChaosConfig, ChaosPort};
use stm_core::machine::counting::CountingPort;
use stm_core::machine::host::HostMachine;
use stm_core::ops::StmOps;
use stm_core::stm::{StmConfig, TxOptions, TxSpec};
use stm_sim::arch::{BusModel, MeshModel};
use stm_sim::engine::SimPort;
use stm_sim::harness::StmSim;

const CELLS: usize = 4;

/// Assert a snapshot is a consistent cut of the lockstep counter and return
/// its clock value.
fn lockstep_value(snap: &[u32]) -> u32 {
    assert!(
        snap.windows(2).all(|w| w[0] == w[1]),
        "torn snapshot (inconsistent cut): {snap:?}"
    );
    snap[0]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]
    /// Simulator agreement witness: under random schedules on both
    /// machines, fast-path snapshots and identity-transaction snapshots
    /// interleave into one monotone sequence of consistent lockstep states,
    /// and after quiescence both report exactly the write count.
    #[test]
    fn fast_snapshot_agrees_with_identity_snapshot_on_sims(
        seed in 0u64..500,
        jitter in 0u64..5,
        mesh: bool,
    ) {
        const WRITERS: usize = 3;
        const WRITES_PER: u64 = 15;
        const READS: u64 = 30;
        let sim = StmSim::new(WRITERS + 1, CELLS, CELLS, StmConfig::default())
            .seed(seed)
            .jitter(jitter);
        let observed: Arc<Mutex<Vec<(bool, u32)>>> = Arc::new(Mutex::new(Vec::new()));
        let obs = Arc::clone(&observed);
        let body = |p: usize, ops: StmOps| {
            let obs = Arc::clone(&obs);
            move |mut port: SimPort| {
                let cells: Vec<usize> = (0..CELLS).collect();
                if p < WRITERS {
                    for _ in 0..WRITES_PER {
                        ops.fetch_add_many(&mut port, &cells, &[1; CELLS]);
                    }
                    return;
                }
                // The reader: alternate the fast path with the acquiring
                // identity transaction over the same cells.
                let spec = TxSpec::new(ops.builtins().read, &[], &cells);
                for i in 0..READS {
                    let (fast, snap) = if i % 2 == 0 {
                        (true, ops.snapshot(&mut port, &cells))
                    } else {
                        let out = ops
                            .run(&mut port, &spec, &mut TxOptions::new())
                            .expect("unlimited budget");
                        (false, out.old)
                    };
                    obs.lock().unwrap().push((fast, lockstep_value(&snap)));
                }
            }
        };
        let report = if mesh {
            sim.run(MeshModel::for_procs(WRITERS + 1), body)
        } else {
            sim.run(BusModel::for_procs(WRITERS + 1), body)
        };
        // Both snapshot kinds linearize into one monotone clock.
        let seq = observed.lock().unwrap();
        prop_assert_eq!(seq.len() as u64, READS);
        for w in seq.windows(2) {
            prop_assert!(
                w[1].1 >= w[0].1,
                "snapshots ran backwards: {:?} then {:?}", w[0], w[1]
            );
        }
        // Quiescent agreement: every cell holds exactly the write count.
        let want = (WRITERS as u64 * WRITES_PER) as u32;
        prop_assert_eq!(sim.all_cells(&report), vec![want; CELLS]);
        prop_assert!(sim.leaked_ownerships(&report).is_empty());
    }
}

/// Host agreement witness: the same interleaved reader against real-thread
/// writers, with [`ChaosPort`] injecting yields/sleeps/spins at every
/// protocol step point. The OS scheduler is the adversary; the lockstep
/// invariant is the oracle.
#[test]
fn fast_snapshot_agrees_under_chaos_on_host() {
    const WRITERS: usize = 3;
    const WRITES_PER: u64 = 60;
    const READS: u64 = 120;
    for seed in [0x5EED, 0xB0A7] {
        let ops = StmOps::new(0, CELLS, WRITERS + 1, CELLS, StmConfig::default());
        let machine = HostMachine::new(ops.stm().layout().words_needed(), WRITERS + 1);
        let writes_done = AtomicU64::new(0);
        std::thread::scope(|s| {
            for p in 0..WRITERS {
                let ops = ops.clone();
                let machine = machine.clone();
                let writes_done = &writes_done;
                s.spawn(move || {
                    let mut port =
                        ChaosPort::new(machine.port(p), ChaosConfig::default().with_seed(seed));
                    let cells: Vec<usize> = (0..CELLS).collect();
                    for _ in 0..WRITES_PER {
                        ops.fetch_add_many(&mut port, &cells, &[1; CELLS]);
                        writes_done.fetch_add(1, Ordering::SeqCst);
                    }
                });
            }
            let ops = ops.clone();
            let machine = machine.clone();
            s.spawn(move || {
                let mut port = ChaosPort::new(
                    machine.port(WRITERS),
                    ChaosConfig::default().with_seed(seed ^ 1),
                );
                let cells: Vec<usize> = (0..CELLS).collect();
                let spec = TxSpec::new(ops.builtins().read, &[], &cells);
                let mut last = 0u32;
                for i in 0..READS {
                    let snap = if i % 2 == 0 {
                        ops.snapshot(&mut port, &cells)
                    } else {
                        ops.run(&mut port, &spec, &mut TxOptions::new())
                            .expect("unlimited budget")
                            .old
                    };
                    let v = lockstep_value(&snap);
                    assert!(v >= last, "snapshots ran backwards: {last} then {v}");
                    last = v;
                }
            });
        });
        // Quiescent agreement between the two paths and the write count.
        let mut port = machine.port(0);
        let cells: Vec<usize> = (0..CELLS).collect();
        let fast = ops.stm().try_read_only(&mut port, &cells).expect("no live owner remains");
        let want = writes_done.load(Ordering::SeqCst) as u32;
        assert_eq!(fast.old, vec![want; CELLS], "seed {seed:#x}");
        let identity = ops
            .run(&mut port, &TxSpec::new(ops.builtins().read, &[], &cells), &mut TxOptions::new())
            .unwrap();
        assert_eq!(identity.old, fast.old, "seed {seed:#x}");
    }
}

/// Writer storm: with the fast path bounded to a single validation round,
/// saturating writers keep invalidating the reader's collects, so some
/// snapshots must take the acquiring fallback — visible in the simulator as
/// protocol commits beyond what the writers alone account for. The reads
/// still finish and still observe only consistent cuts: the escape hatch
/// engages instead of livelocking.
#[test]
fn writer_storm_forces_fallback_through_acquiring_path() {
    const WRITERS: usize = 3;
    const WRITES_PER: u64 = 40;
    const READS: u64 = 40;
    let config = StmConfig { fast_read_rounds: 1, ..StmConfig::default() };
    let sim = StmSim::new(WRITERS + 1, CELLS, CELLS, config).seed(9).jitter(3).trace(200_000);
    let report = sim.run(BusModel::for_procs(WRITERS + 1), |p, ops| {
        move |mut port: SimPort| {
            let cells: Vec<usize> = (0..CELLS).collect();
            if p < WRITERS {
                for _ in 0..WRITES_PER {
                    ops.fetch_add_many(&mut port, &cells, &[1; CELLS]);
                }
                return;
            }
            for _ in 0..READS {
                let snap = ops.snapshot(&mut port, &cells);
                lockstep_value(&snap);
            }
        }
    });
    let writer_commits = WRITERS as u64 * WRITES_PER;
    let commits = report.stats.commits();
    assert!(
        commits > writer_commits,
        "the storm must push at least one snapshot onto the acquiring path \
         ({commits} commits vs {writer_commits} writer transactions)"
    );
    assert_eq!(sim.all_cells(&report), vec![(writer_commits) as u32; CELLS]);
    assert!(sim.leaked_ownerships(&report).is_empty());
}

/// Deterministic fallback proof on the host: a transaction crashed after
/// acquiring ownership wedges the cells, so every validation round sees a
/// live owner. The bounded fast path refuses, and `snapshot` falls back to
/// the acquiring path — which performs shared-memory writes (helping the
/// wedged transaction through) where the fast path performed none.
#[test]
fn wedged_owner_forces_fallback_and_fallback_writes() {
    let ops = StmOps::new(0, CELLS, 2, CELLS, StmConfig::default());
    let machine = HostMachine::new(ops.stm().layout().words_needed(), 2);

    // Proc 1 acquires cells 0..2 for a (+5, +5) add, then dies.
    let mut p1 = machine.port(1);
    ops.stm()
        .inject_crash_after_acquire(&mut p1, &TxSpec::new(ops.builtins().add, &[5, 5], &[0, 1]));

    let mut port = CountingPort::new(machine.port(0));
    // The bounded fast path burns its rounds against the live owner without
    // a single shared-memory write, then refuses.
    assert!(ops.stm().try_read_only(&mut port, &[0, 1]).is_none(), "live owner must block");
    let c = port.counts();
    assert!(c.reads > 0, "validation rounds read shared memory");
    assert_eq!(c.writes + c.cas_ok + c.cas_failed, 0, "the refusing fast path writes nothing");

    // The full snapshot falls back, helps the corpse through, and returns
    // the post-help values — at the cost of shared-memory writes.
    port.reset();
    assert_eq!(ops.snapshot(&mut port, &[0, 1]), vec![5, 5]);
    let c = port.counts();
    assert!(
        c.writes + c.cas_ok + c.cas_failed > 0,
        "the acquiring fallback must write (it helped the wedged transaction)"
    );

    // Obstruction cleared: the fast path is zero-write again.
    port.reset();
    assert_eq!(ops.snapshot(&mut port, &[0, 1]), vec![5, 5]);
    let c = port.counts();
    assert_eq!(c.writes + c.cas_ok + c.cas_failed, 0, "uncontended snapshots stay invisible");
}
