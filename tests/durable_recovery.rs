//! Crash durability under systematic kill testing.
//!
//! The durable commit path journals a redo record and flushes it to stable
//! storage *before any participant installs a value*. These tests kill the
//! victim at every instrumented protocol step — the classic matrix plus the
//! three journal steps — and check two oracles at every point:
//!
//! * the live oracle from `fault_injection.rs`: helpers complete every
//!   post-decision transaction exactly once and drain the ownership table;
//! * the **recovery oracle**: rebuilding the heap from the base image plus
//!   the durable journal yields bit-for-bit the live run's final heap, so a
//!   full machine crash at that same point would lose nothing that was
//!   decided and durable.
//!
//! A deliberately sabotaged variant (journal *after* install — the classic
//! missing-write-ahead bug) proves the recovery-equivalence checker has
//! teeth: crashing in the install-to-flush window makes the recovered heap
//! diverge from the live one, the fuzzer finds it, and the shrinker reduces
//! the plan to a minimal reproducer.

use proptest::collection::vec as pvec;
use proptest::prelude::*;
use stm_core::durable::{recover, recover_with, scan_journal, DurableMem, MemJournal, RedoRecord};
use stm_core::metrics::TxMetrics;
use stm_core::ops::StmOps;
use stm_core::step::StepKind;
use stm_core::stm::{Sabotage, StmConfig, TxOptions, TxSpec};
use stm_core::word::{pack_cell, Word};
use stm_sim::engine::{SimPort, SimReport};
use stm_sim::explore::{durable_crash_matrix, shrink, MatrixPoint};
use stm_sim::faults::FaultPlan;
use stm_sim::liveness::LivenessChecker;
use stm_sim::trace::render_trace;
use stm_sim::{BusModel, MeshModel, StmSim};

/// The victim's transaction adds this to each of its cells.
const VICTIM_ADD: u32 = 100;
/// Each of the two survivors runs this many 2-cell add transactions.
const SURVIVOR_TXS: usize = 10;
/// Survivors sleep this long before starting, so the victim reliably reaches
/// its scripted crash point first on every architecture model.
const SURVIVOR_DELAY: u64 = 5000;
/// Simulated fsync latency in virtual cycles. Non-zero so a crash delivered
/// during the flush window is distinguishable from one delivered after it.
const FLUSH_COST: u64 = 300;

/// Run one journaled add transaction through the options-based entry point.
fn durable_add(
    ops: &StmOps,
    port: &mut SimPort,
    jrn: &mut MemJournal,
    cells: &[usize],
    deltas: &[u32],
) {
    let params: Vec<Word> = deltas.iter().map(|&d| d as Word).collect();
    let mut opts = TxOptions::new().journal(&mut *jrn);
    let _ = ops
        .run(port, &TxSpec::new(ops.builtins().add, &params, cells), &mut opts)
        .expect("unlimited budget: add must commit");
}

fn port_delay(port: &mut SimPort, cycles: u64) {
    use stm_core::machine::MemPort;
    port.delay(cycles);
}

/// The durable matrix scenario: processor 0 (the victim) runs one journaled
/// 2-cell transaction and is crashed somewhere inside it by the plan;
/// processors 1 and 2 then hammer the same two cells, also journaled. Every
/// processor's handle shares one [`DurableMem`]; a crashed processor's
/// un-flushed pending bytes die with its handle.
fn durable_matrix_scenario(sim: &StmSim, storage: &DurableMem, arch: usize) -> SimReport {
    let body = |p: usize, ops: StmOps| {
        let mut jrn = storage.handle().flush_cost(FLUSH_COST);
        move |mut port: SimPort| {
            if p == 0 {
                durable_add(&ops, &mut port, &mut jrn, &[0, 1], &[VICTIM_ADD, VICTIM_ADD]);
                return;
            }
            port_delay(&mut port, SURVIVOR_DELAY);
            for _ in 0..SURVIVOR_TXS {
                durable_add(&ops, &mut port, &mut jrn, &[0, 1], &[1, 1]);
            }
        }
    };
    match arch {
        0 => sim.run(BusModel::for_procs(3), body),
        _ => sim.run(MeshModel::for_procs(3), body),
    }
}

fn matrix_sim(seed: u64, plan: &FaultPlan) -> StmSim {
    StmSim::new(3, 4, 4, StmConfig::default())
        .seed(seed)
        .jitter(2)
        .trace(100_000)
        .faults(plan.clone())
}

fn check_matrix_point(decode: &StmSim, report: &SimReport, point: &MatrixPoint, ctx: &str) {
    let effect = if point.expect_effect { 1u32 } else { 0 };
    let want = VICTIM_ADD * effect + (2 * SURVIVOR_TXS) as u32;
    for cell in 0..2 {
        assert_eq!(
            decode.cell_value(report, cell),
            want,
            "{ctx}: cell {cell} — victim effect must land {} times",
            effect
        );
    }
    assert_eq!(
        decode.leaked_ownerships(report),
        Vec::<usize>::new(),
        "{ctx}: helpers must drain every ownership the victim left behind"
    );
    assert_eq!(report.crashed, vec![0], "{ctx}: exactly the victim crashed");
    assert_eq!(
        LivenessChecker::with_budget(80_000).check(report),
        None,
        "{ctx}: lock-freedom bound"
    );
}

/// The recovery oracle: replaying the durable journal over the run's base
/// image must reproduce the live run's final heap, packed stamps included.
/// Every cell starts at `pack_cell(0, 0)` (the harness default), so the base
/// image is the all-zero word vector.
fn check_recovery_matches_live(decode: &StmSim, report: &SimReport, storage: &DurableMem, ctx: &str) {
    let layout = decode.ops().stm().layout();
    let mut recovered: Vec<Word> = vec![pack_cell(0, 0); layout.n_cells()];
    let rep = recover(&mut recovered, &storage.bytes());
    let live: Vec<Word> =
        (0..layout.n_cells()).map(|i| report.memory[layout.cell(i)]).collect();
    assert_eq!(
        recovered, live,
        "{ctx}: recovered heap must equal the live heap ({rep:?})"
    );
}

/// Seeds per matrix point: 10 by default, raised by the nightly CI sweep via
/// the `FAULT_MATRIX_SEEDS` environment variable.
fn matrix_seeds() -> u64 {
    std::env::var("FAULT_MATRIX_SEEDS").ok().and_then(|s| s.parse().ok()).unwrap_or(10)
}

fn run_durable_crash_matrix(arch: usize, arch_name: &str) {
    let decode = StmSim::new(3, 4, 4, StmConfig::default());
    for point in durable_crash_matrix(0, 2) {
        for seed in 0..matrix_seeds() {
            let storage = DurableMem::new();
            let report =
                durable_matrix_scenario(&matrix_sim(seed, &point.plan), &storage, arch);
            let ctx = format!("{arch_name}/crash@{}/seed{seed}", point.label);
            check_matrix_point(&decode, &report, &point, &ctx);
            check_recovery_matches_live(&decode, &report, &storage, &ctx);
        }
    }
}

#[test]
fn durable_crash_matrix_holds_on_bus_model() {
    run_durable_crash_matrix(0, "bus");
}

#[test]
fn durable_crash_matrix_holds_on_mesh_model() {
    run_durable_crash_matrix(1, "mesh");
}

#[test]
fn decided_durable_but_uninstalled_commit_replays_exactly_once() {
    // An uncontended victim crashes right after its record became durable
    // and before installing anything: nobody is around to help, so the live
    // heap never sees the effect — but the journal does, and recovery must
    // replay it exactly once. This is the case that distinguishes durable
    // recovery from the in-memory helping story.
    let plan = FaultPlan::new().crash_at_step(0, StepKind::JournalDurable, None);
    let storage = DurableMem::new();
    let sim = StmSim::new(1, 4, 4, StmConfig::default()).seed(0).trace(10_000).faults(plan);
    let report = sim.run(BusModel::for_procs(1), |_p, ops| {
        let mut jrn = storage.handle().flush_cost(FLUSH_COST);
        move |mut port: SimPort| {
            durable_add(&ops, &mut port, &mut jrn, &[0, 1], &[VICTIM_ADD, VICTIM_ADD]);
        }
    });
    assert_eq!(report.crashed, vec![0]);
    assert_eq!(sim.cell_value(&report, 0), 0, "no install happened before the crash");
    assert_eq!(sim.cell_value(&report, 1), 0);

    let n = sim.ops().stm().layout().n_cells();
    let mut recovered: Vec<Word> = vec![pack_cell(0, 0); n];
    let rep = recover(&mut recovered, &storage.bytes());
    assert_eq!(rep.records_scanned, 1);
    assert_eq!(rep.records_installed, 1);
    assert_eq!(rep.cells_installed, 2);
    assert_eq!(rep.tail_discarded, 0);
    assert_eq!(stm_core::word::cell_value(recovered[0]), VICTIM_ADD);
    assert_eq!(stm_core::word::cell_value(recovered[1]), VICTIM_ADD);

    // Recovery is idempotent: a second replay over the recovered heap — a
    // restart that crashed after recovering but before checkpointing — must
    // install nothing.
    let again = recover(&mut recovered, &storage.bytes());
    assert_eq!(again.records_installed, 0);
    assert_eq!(stm_core::word::cell_value(recovered[0]), VICTIM_ADD);
}

#[test]
fn stale_duplicate_from_a_stalled_flusher_is_skipped_at_replay() {
    // The victim stalls right before its flush, long enough for the helpers
    // to complete — and journal — its transaction. When the victim resumes
    // it flushes its now-stale record anyway, so the durable stream carries
    // a late duplicate of an already-installed commit. Replay must collapse
    // the duplicate via the pre-image discipline.
    let plan = FaultPlan::new().stall_at_step(0, StepKind::JournalFlush, None, 40_000);
    let decode = StmSim::new(3, 4, 4, StmConfig::default());
    for seed in 0..matrix_seeds() {
        let storage = DurableMem::new();
        let report = durable_matrix_scenario(&matrix_sim(seed, &plan), &storage, 0);
        let ctx = format!("seed{seed}");
        assert!(report.crashed.is_empty(), "{ctx}: a stall is not a crash");
        let want = VICTIM_ADD + (2 * SURVIVOR_TXS) as u32;
        for cell in 0..2 {
            assert_eq!(decode.cell_value(&report, cell), want, "{ctx}: cell {cell}");
        }
        let victim_records =
            scan_journal(&storage.bytes()).records.iter().filter(|r| r.owner == 0).count();
        assert!(
            victim_records >= 2,
            "{ctx}: expected the helper's record plus the victim's stale \
             duplicate, got {victim_records}"
        );
        check_recovery_matches_live(&decode, &report, &storage, &ctx);
    }
}

#[test]
fn journal_flush_metrics_and_recovery_hook_fire() {
    let storage = DurableMem::new();
    let sim = StmSim::new(2, 2, 2, StmConfig::default()).seed(1).jitter(2);
    let metrics_cell = std::sync::Arc::new(std::sync::Mutex::new(TxMetrics::default()));
    let report = sim.run(BusModel::for_procs(2), |_p, ops| {
        let mut jrn = storage.handle().flush_cost(FLUSH_COST);
        let metrics_cell = std::sync::Arc::clone(&metrics_cell);
        move |mut port: SimPort| {
            let mut metrics = TxMetrics::default();
            for _ in 0..5 {
                let mut opts = TxOptions::new().observer(&mut metrics).journal(&mut jrn);
                let _ = ops
                    .run(&mut port, &TxSpec::new(ops.builtins().add, &[1], &[0]), &mut opts)
                    .expect("add must commit");
            }
            metrics_cell.lock().unwrap().merge(&metrics);
        }
    });
    assert_eq!(sim.cell_value(&report, 0), 10);

    let mut metrics = std::sync::Arc::try_unwrap(metrics_cell)
        .expect("all clones dropped")
        .into_inner()
        .unwrap();
    // One flush per commit, possibly more when a processor helped a rival's
    // commit; every flush records the configured simulated latency.
    assert!(metrics.journal_flushes() >= 10, "flushes: {}", metrics.journal_flushes());
    assert!(metrics.journal_records() >= 10);
    assert!(metrics.journal_bytes() > 0);
    assert_eq!(metrics.flush_latency.max(), FLUSH_COST);

    // Replay through the observer-aware entry point: the recovery hook
    // lands in the replay histogram.
    let n = sim.ops().stm().layout().n_cells();
    let mut recovered: Vec<Word> = vec![pack_cell(0, 0); n];
    recover_with(&mut recovered, &storage.bytes(), &mut metrics);
    assert_eq!(metrics.recoveries(), 1);
    let live: Vec<Word> = (0..n)
        .map(|i| report.memory[sim.ops().stm().layout().cell(i)])
        .collect();
    assert_eq!(recovered, live);
}

// ---------------------------------------------------------------------------
// Sabotage: the recovery-equivalence checker must have teeth
// ---------------------------------------------------------------------------

/// Run two non-conflicting processors under the journal-after-install
/// sabotage and report whether the recovery oracle catches the bug. The
/// processors share no cells, so no helper can paper over the victim's
/// missing record by journaling the commit itself.
fn durable_sabotage_fails(seed: u64, plan: &FaultPlan) -> bool {
    let config = StmConfig { sabotage: Sabotage::JournalAfterInstall, ..Default::default() };
    let storage = DurableMem::new();
    let sim = StmSim::new(2, 2, 2, config).seed(seed).jitter(3).trace(200_000).faults(plan.clone());
    let report = sim.run(BusModel::for_procs(2), |p, ops| {
        let mut jrn = storage.handle().flush_cost(FLUSH_COST);
        move |mut port: SimPort| {
            for _ in 0..5 {
                durable_add(&ops, &mut port, &mut jrn, &[p], &[1]);
            }
        }
    });
    let layout = sim.ops().stm().layout();
    let mut recovered: Vec<Word> = vec![pack_cell(0, 0); layout.n_cells()];
    recover(&mut recovered, &storage.bytes());
    let live: Vec<Word> =
        (0..layout.n_cells()).map(|i| report.memory[layout.cell(i)]).collect();
    recovered != live
}

#[test]
fn journal_after_install_sabotage_is_caught_and_shrunk() {
    // A protocol that installs before flushing violates write-ahead
    // ordering: a crash in the install-to-flush window leaves an effect in
    // the live heap that the journal never saw. The recovery-equivalence
    // checker must catch it, and the shrinker must reduce the failing plan.
    let canonical = FaultPlan::new().crash_at_step(0, StepKind::JournalAppend, None);
    let mut fuzzer = stm_sim::explore::FaultFuzzer::new(11, 2, 1).durable();
    let mut candidates = vec![FaultPlan::new(), canonical];
    for _ in 0..20 {
        candidates.push(fuzzer.next_plan());
    }

    let mut failing: Option<(u64, FaultPlan)> = None;
    'search: for seed in 0..10u64 {
        for plan in &candidates {
            if durable_sabotage_fails(seed, plan) {
                failing = Some((seed, plan.clone()));
                break 'search;
            }
        }
    }
    let (seed, plan) = failing
        .expect("the sabotaged write-ahead order evaded the recovery checker: no teeth");

    let (min_seed, min_plan) = shrink(seed, &plan, durable_sabotage_fails);
    assert!(durable_sabotage_fails(min_seed, &min_plan), "shrunk reproducer must still fail");
    assert!(min_plan.faults.len() <= plan.faults.len(), "shrinking must never grow the plan");
    assert!(!min_plan.is_empty(), "the bug needs a crash: an empty plan cannot expose it");

    // Correctness control: the same reproducer passes on the real protocol.
    {
        let storage = DurableMem::new();
        let sim = StmSim::new(2, 2, 2, StmConfig::default())
            .seed(min_seed)
            .jitter(3)
            .trace(200_000)
            .faults(min_plan.clone());
        let report = sim.run(BusModel::for_procs(2), |p, ops| {
            let mut jrn = storage.handle().flush_cost(FLUSH_COST);
            move |mut port: SimPort| {
                for _ in 0..5 {
                    durable_add(&ops, &mut port, &mut jrn, &[p], &[1]);
                }
            }
        });
        let decode = StmSim::new(2, 2, 2, StmConfig::default());
        check_recovery_matches_live(&decode, &report, &storage, "control");
    }

    // Render the counterexample the way a human would receive it.
    let config = StmConfig { sabotage: Sabotage::JournalAfterInstall, ..Default::default() };
    let storage = DurableMem::new();
    let sim = StmSim::new(2, 2, 2, config)
        .seed(min_seed)
        .jitter(3)
        .trace(200_000)
        .faults(min_plan.clone());
    let report = sim.run(BusModel::for_procs(2), |p, ops| {
        let mut jrn = storage.handle().flush_cost(FLUSH_COST);
        move |mut port: SimPort| {
            for _ in 0..5 {
                durable_add(&ops, &mut port, &mut jrn, &[p], &[1]);
            }
        }
    });
    let dump = render_trace(&report.trace, 60, report.trace_dropped);
    println!("minimal reproducer: seed {min_seed}, plan [{min_plan}]");
    println!("{dump}");
    assert!(dump.contains("step "), "dump must show protocol steps:\n{dump}");
}

// ---------------------------------------------------------------------------
// CRC corruption property
// ---------------------------------------------------------------------------

proptest! {
    /// Flipping any single bit anywhere in a journal makes the scanner stop
    /// exactly at the record containing the flip: every record before it is
    /// recovered verbatim, and nothing at or after it is — a corrupted
    /// stream never replays a damaged or fabricated record.
    #[test]
    fn single_bit_corruption_discards_exactly_the_tail(
        recs in pvec(
            (0usize..8, 1u64..1000, pvec((0usize..64, any::<u16>(), any::<u32>(), any::<u32>()), 1..4)),
            1..5,
        ),
        pos in any::<u64>(),
        bit in 0u32..8,
    ) {
        let mut bytes = Vec::new();
        let mut ends = Vec::new();
        for (owner, version, cells) in &recs {
            let idx: Vec<usize> = cells.iter().map(|c| c.0).collect();
            let pre: Vec<Word> =
                cells.iter().map(|&(_, stamp, old, _)| pack_cell(stamp, old)).collect();
            let new: Vec<u32> = cells.iter().map(|c| c.3).collect();
            stm_core::durable::encode_record(
                &RedoRecord { owner: *owner, version: *version, cells: &idx, pre: &pre, new: &new },
                &mut bytes,
            );
            ends.push(bytes.len());
        }
        let intact = scan_journal(&bytes);
        prop_assert_eq!(intact.records.len(), recs.len());
        prop_assert_eq!(intact.tail_discarded, 0);

        let at = (pos % bytes.len() as u64) as usize;
        let mut corrupt = bytes.clone();
        corrupt[at] ^= 1 << bit;
        // The record containing the flipped byte, and everything after it,
        // must be discarded; everything before it survives verbatim.
        let intact_prefix = ends.iter().filter(|&&end| end <= at).count();
        let scan = scan_journal(&corrupt);
        prop_assert_eq!(scan.records.len(), intact_prefix);
        prop_assert_eq!(&scan.records[..], &intact.records[..intact_prefix]);
        prop_assert_eq!(
            scan.tail_discarded,
            corrupt.len() - ends.get(intact_prefix.wrapping_sub(1)).copied().unwrap_or(0)
        );
    }
}
