//! # stm-repro — reproduction of Shavit & Touitou, "Software Transactional Memory" (PODC 1995)
//!
//! Umbrella crate tying the workspace together; see the individual crates:
//!
//! * [`stm_core`] — the STM algorithm, machine abstraction, host runtime;
//! * [`stm_sim`] — the deterministic Proteus-like multiprocessor simulator;
//! * [`stm_sync`] — the evaluation's baselines (TTAS, MCS, Herlihy);
//! * [`stm_structures`] — the benchmark data structures over every method.
//!
//! The runnable examples live in `examples/`; the cross-crate integration
//! and property tests in `tests/`; the figure-regeneration harness in the
//! `stm-bench` crate (`cargo run -p stm-bench --release --bin figures`).

pub use stm_core;
pub use stm_sim;
pub use stm_structures;
pub use stm_sync;
