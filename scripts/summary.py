#!/usr/bin/env python3
"""T1: per-figure curve summary (peak and final throughput per method)
computed from the results/*.csv sweeps."""
import csv
import glob
import sys

FIG = {
    ("counting", "bus"): "F1", ("counting", "mesh"): "F2",
    ("queue", "bus"): "F3", ("queue", "mesh"): "F4",
    ("resource", "bus"): "F5", ("resource", "mesh"): "F6",
    ("prio", "bus"): "F7", ("prio", "mesh"): "F8",
}

def main(paths):
    print(f"{'fig':>4} {'bench/arch':>14} {'method':>12} {'peak-thr':>10} "
          f"{'peak-P':>7} {'final-thr':>10}")
    for path in paths:
        rows = list(csv.DictReader(open(path)))
        if not rows or "arch" not in rows[0]:
            continue
        bench, arch = rows[0]["bench"], rows[0]["arch"]
        fig = FIG.get((bench, arch))
        if fig is None:
            continue
        methods = []
        for r in rows:
            if r["method"] not in methods:
                methods.append(r["method"])
        for m in methods:
            curve = [(int(r["procs"]), float(r["throughput"]))
                     for r in rows if r["method"] == m]
            peak = max(curve, key=lambda x: x[1])
            final = max(curve, key=lambda x: x[0])
            print(f"{fig:>4} {bench + '/' + arch:>14} {m:>12} "
                  f"{peak[1]:>10.1f} {peak[0]:>7} {final[1]:>10.1f}")

if __name__ == "__main__":
    main(sorted(sys.argv[1:] or glob.glob("results/*.csv")))
