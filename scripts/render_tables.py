#!/usr/bin/env python3
"""Render results/*.csv sweep files as the aligned throughput tables used in
EXPERIMENTS.md (same layout as the `figures` binary prints)."""
import csv
import sys


def render(path):
    rows = list(csv.DictReader(open(path)))
    if not rows:
        return f"{path}: empty\n"
    methods, procs, data = [], [], {}
    for r in rows:
        m, p = r["method"], int(r["procs"])
        if m not in methods:
            methods.append(m)
        if p not in procs:
            procs.append(p)
        data[(m, p)] = float(r["throughput"])
    procs.sort()
    out = [f"{'procs':>6}" + "".join(f"{m:>13}" for m in methods)]
    for p in procs:
        out.append(
            f"{p:>6}" + "".join(f"{data.get((m, p), 0):>13.1f}" for m in methods)
        )
    return "\n".join(out) + "\n"


if __name__ == "__main__":
    for path in sys.argv[1:]:
        print(f"== {path}")
        print(render(path))
